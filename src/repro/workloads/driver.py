"""Request drivers: replay workloads against a platform through a router.

The driver is the simulation counterpart of the paper's request-issuing
node.  It feeds arrival streams (open loop) and interactive sessions
(closed loop, next query after the previous response) through a
:class:`~repro.routing.Router` into the serverless controller, and
collects :class:`~repro.serverless.action.InvocationResult` records.

:class:`LiveLoadDriver` is its wall-clock twin for the *functional*
stack: it drives any blocking ``issue`` callable -- an in-process
:meth:`~repro.core.deployment.UserSession.infer` or a
:meth:`~repro.service.client.RemoteSession.infer` over the HTTP tier
-- in open or closed loop, classifying sheds
(:class:`~repro.errors.QueueFull`, whichever side raised it) separately
from failures so saturation benchmarks can gate on shed latency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import QueueFull, ReproError
from repro.routing import Router
from repro.serverless.action import Request
from repro.serverless.controller import Controller
from repro.sim.core import Simulation
from repro.workloads.arrival import Arrival, Session


@dataclass
class DriverReport:
    """Everything a driver run produced."""

    results: List = field(default_factory=list)
    #: results of session queries, keyed by (session_index, model_id)
    session_results: Dict = field(default_factory=dict)


class WorkloadDriver:
    """Issues requests and observes completions."""

    def __init__(
        self,
        sim: Simulation,
        controller: Controller,
        router: Router,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.router = router
        self.report = DriverReport()
        #: tracer for request root spans (falls back to the controller's)
        self.tracer = tracer if tracer is not None else controller.tracer

    def _start_request(self, model_id: str, user_id: str, endpoint: str) -> Request:
        """Build a request, opening its root span when tracing is on.

        The driver owns the root span (rather than the controller) so the
        trace also covers routing: the chosen endpoint is recorded as an
        attribute before the request enters the platform.
        """
        request = Request(model_id=model_id, user_id=user_id)
        if self.tracer is not None:
            request.span = self.tracer.start_span(
                "request",
                request_id=request.request_id,
                model_id=model_id,
                user_id=user_id,
                endpoint=endpoint,
            )
        return request

    # -- open-loop arrivals -------------------------------------------------------

    def submit_arrivals(self, arrivals: Sequence[Arrival]) -> None:
        """Schedule an open-loop stream (requests fire at their timestamps)."""
        self.sim.process(self._arrival_loop(list(arrivals)), name="driver:arrivals")

    def _arrival_loop(self, arrivals: List[Arrival]):
        arrivals.sort(key=lambda a: a.time)
        for arrival in arrivals:
            delay = arrival.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._fire(arrival.model_id, arrival.user_id)

    def _fire(self, model_id: str, user_id: str, sink: Optional[dict] = None,
              sink_key=None):
        endpoint = self.router.route(model_id, self.sim.now)
        request = self._start_request(model_id, user_id, endpoint)
        done = self.controller.invoke(endpoint, request)
        self.router.on_dispatch(endpoint, model_id, self.sim.now)
        self.sim.process(
            self._collect(done, endpoint, model_id, sink, sink_key),
            name=f"collect:{request.request_id}",
        )
        return done

    def _collect(self, done, endpoint: str, model_id: str, sink, sink_key):
        result = yield done
        self.router.on_complete(endpoint, model_id, self.sim.now)
        self.report.results.append(result)
        if sink is not None:
            sink[sink_key] = result

    # -- closed-loop sessions ----------------------------------------------------------

    def submit_session(self, session: Session, index: int = 0) -> None:
        """Schedule an interactive session (sequential queries)."""
        self.sim.process(
            self._session_loop(session, index), name=f"driver:session{index}"
        )

    def _session_loop(self, session: Session, index: int):
        if session.start_time > self.sim.now:
            yield self.sim.timeout(session.start_time - self.sim.now)
        for model_id in session.models:
            endpoint = self.router.route(model_id, self.sim.now)
            request = self._start_request(model_id, session.user_id, endpoint)
            done = self.controller.invoke(endpoint, request)
            self.router.on_dispatch(endpoint, model_id, self.sim.now)
            result = yield done
            self.router.on_complete(endpoint, model_id, self.sim.now)
            self.report.results.append(result)
            self.report.session_results[(index, model_id)] = result

    # -- running --------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> DriverReport:
        """Run the simulation and return the collected report."""
        self.sim.run(until=until)
        return self.report


# ------------------------------------------------------------------------------
# live (wall-clock) load generation
# ------------------------------------------------------------------------------


@dataclass
class LiveRecord:
    """One issued request's outcome."""

    client: int
    seq: int
    started: float
    finished: float
    ok: bool
    shed: bool
    error: Optional[str] = None

    @property
    def latency_s(self) -> float:
        return self.finished - self.started


@dataclass
class LiveReport:
    """Everything a live run produced, plus the gate arithmetic."""

    records: List[LiveRecord] = field(default_factory=list)
    #: workers still alive after the post-run join window -- every one
    #: is a hung request, the thing saturation benchmarks gate to zero
    hung: int = 0

    def admitted(self) -> List[LiveRecord]:
        """Records that were served successfully."""
        return [r for r in self.records if r.ok]

    def sheds(self) -> List[LiveRecord]:
        """Records refused by admission control (fast 429s)."""
        return [r for r in self.records if r.shed]

    def failures(self) -> List[LiveRecord]:
        """Records that failed with a non-shed serving error."""
        return [r for r in self.records if not r.ok and not r.shed]

    def latencies_s(self, which: str = "admitted") -> List[float]:
        """Sorted latencies of one record class (``admitted``/``sheds``/``failures``)."""
        picked = getattr(self, which)()
        return sorted(r.latency_s for r in picked)

    def percentile_s(self, fraction: float, which: str = "admitted") -> float:
        """Nearest-rank percentile of a record class (0.0 when empty)."""
        values = self.latencies_s(which)
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, int(fraction * len(values))))
        return values[rank]

    def summary(self) -> dict:
        """The flat counters and percentiles the benchmark gates read."""
        return {
            "total": len(self.records),
            "admitted": len(self.admitted()),
            "shed": len(self.sheds()),
            "failed": len(self.failures()),
            "hung": self.hung,
            "admitted_p50_ms": 1e3 * self.percentile_s(0.50),
            "admitted_p99_ms": 1e3 * self.percentile_s(0.99),
            "shed_p99_ms": 1e3 * self.percentile_s(0.99, "sheds"),
        }


#: issue(client_index, sequence_number) -> anything (raises on failure)
IssueFn = Callable[[int, int], object]


class LiveLoadDriver:
    """Open/closed-loop load against a blocking serving surface.

    Transport-agnostic: ``issue`` is any callable that serves one
    request synchronously -- an in-process session or the HTTP client.
    Exceptions in ``shed_on`` (default :class:`~repro.errors.QueueFull`,
    which the canonical wire mapping round-trips as 429) are recorded
    as *sheds*; other :class:`~repro.errors.ReproError` as failures;
    anything else propagates (a driver bug, not a serving outcome).
    """

    def __init__(
        self,
        issue: IssueFn,
        *,
        shed_on: Tuple[Type[BaseException], ...] = (QueueFull,),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.issue = issue
        self.shed_on = shed_on
        self.clock = clock

    def _one(self, client: int, seq: int) -> LiveRecord:
        started = self.clock()
        try:
            self.issue(client, seq)
            return LiveRecord(client, seq, started, self.clock(), True, False)
        except self.shed_on as exc:
            return LiveRecord(
                client, seq, started, self.clock(), False, True,
                error=type(exc).__name__,
            )
        except ReproError as exc:
            return LiveRecord(
                client, seq, started, self.clock(), False, False,
                error=type(exc).__name__,
            )

    def closed_loop(
        self,
        clients: int,
        duration_s: float,
        *,
        think_s: float = 0.0,
        join_timeout_s: float = 30.0,
    ) -> LiveReport:
        """``clients`` workers, each issuing its next request as soon as
        the previous one resolves (plus optional think time)."""
        report = LiveReport()
        lock = threading.Lock()
        stop_at = self.clock() + duration_s

        def worker(client: int) -> None:
            seq = 0
            while self.clock() < stop_at:
                record = self._one(client, seq)
                with lock:
                    report.records.append(record)
                seq += 1
                if think_s > 0:
                    time.sleep(think_s)

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"load-c{i}", daemon=True
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + duration_s + join_timeout_s
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        report.hung = sum(1 for t in threads if t.is_alive())
        return report

    def open_loop(
        self,
        rate_rps: float,
        duration_s: float,
        *,
        join_timeout_s: float = 30.0,
    ) -> LiveReport:
        """Fire requests at a fixed rate regardless of completions.

        Each arrival gets its own thread, so a slow server accumulates
        outstanding requests instead of slowing the arrival process --
        the classic open-loop saturation probe.
        """
        report = LiveReport()
        lock = threading.Lock()
        interval = 1.0 / rate_rps
        threads: List[threading.Thread] = []
        start = self.clock()
        seq = 0

        def fire(client: int, number: int) -> None:
            record = self._one(client, number)
            with lock:
                report.records.append(record)

        while self.clock() - start < duration_s:
            thread = threading.Thread(
                target=fire, args=(0, seq), name=f"load-a{seq}", daemon=True
            )
            threads.append(thread)
            thread.start()
            seq += 1
            next_at = start + seq * interval
            delay = next_at - self.clock()
            if delay > 0:
                time.sleep(delay)
        deadline = time.monotonic() + join_timeout_s
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        report.hung = sum(1 for t in threads if t.is_alive())
        return report
