"""The MLPerf-style mixed workload of the FnPacker evaluation (Section VI-D).

Two representative MLPerf patterns are mixed:

- Poisson streams to the popular models ``m0`` and ``m1`` at 2 rps each
  for eight minutes;
- two interactive sessions (around minutes 4 and 6) in which one user
  queries models ``m0`` .. ``m4`` sequentially on the same sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.workloads.arrival import Arrival, Session, merge_arrivals, poisson


@dataclass(frozen=True)
class FnPackerWorkload:
    """The generated workload: open-loop arrivals plus sessions."""

    arrivals: List[Arrival]
    sessions: Tuple[Session, ...]


def build_fnpacker_workload(
    popular_rate_rps: float = 2.0,
    duration_s: float = 480.0,
    session_times: Tuple[float, ...] = (240.0, 360.0),
    model_ids: Tuple[str, ...] = ("m0", "m1", "m2", "m3", "m4"),
    seed: int = 2025,
) -> FnPackerWorkload:
    """Generate the Table III / IV workload.

    ``model_ids[0]`` and ``model_ids[1]`` receive the Poisson traffic;
    every session queries all of ``model_ids`` in order.
    """
    rng = np.random.default_rng(seed)
    streams = [
        poisson(popular_rate_rps, duration_s, model_ids[0], user_id="alice", rng=rng),
        poisson(popular_rate_rps, duration_s, model_ids[1], user_id="bob", rng=rng),
    ]
    sessions = tuple(
        Session(start_time=at, models=model_ids, user_id="analyst")
        for at in session_times
    )
    return FnPackerWorkload(arrivals=merge_arrivals(*streams), sessions=sessions)
