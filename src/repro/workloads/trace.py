"""Trace-driven workloads.

Production serverless traffic (e.g. the Azure Functions traces behind
"Serverless in the Wild", which the paper cites for its workload
characterisation) can be replayed by loading a CSV of
``time,model_id,user_id`` rows.  A small generator is included that
produces a trace with the hallmark properties of those traces --
a few hot functions plus a long tail of rarely-invoked ones -- for use
when the real dataset is unavailable.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.workloads.arrival import Arrival


def parse_trace_csv(text: str) -> List[Arrival]:
    """Parse ``time,model_id,user_id`` rows (header optional)."""
    arrivals: List[Arrival] = []
    reader = csv.reader(io.StringIO(text))
    for line_number, row in enumerate(reader, start=1):
        if not row or row[0].strip().startswith("#"):
            continue
        if line_number == 1 and row[0].strip().lower() == "time":
            continue  # header
        if len(row) < 2:
            raise ConfigError(f"trace line {line_number}: need time,model[,user]")
        try:
            time = float(row[0])
        except ValueError as exc:
            raise ConfigError(f"trace line {line_number}: bad time {row[0]!r}") from exc
        if time < 0:
            raise ConfigError(f"trace line {line_number}: negative time")
        user = row[2].strip() if len(row) > 2 and row[2].strip() else "trace-user"
        arrivals.append(Arrival(time=time, model_id=row[1].strip(), user_id=user))
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def format_trace_csv(arrivals: Iterable[Arrival]) -> str:
    """Inverse of :func:`parse_trace_csv` (with header)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", "model_id", "user_id"])
    for arrival in arrivals:
        writer.writerow([f"{arrival.time:.6f}", arrival.model_id, arrival.user_id])
    return out.getvalue()


def synthesize_skewed_trace(
    model_ids: Sequence[str],
    duration_s: float,
    total_rate_rps: float,
    skew: float = 1.2,
    seed: int = 0,
) -> List[Arrival]:
    """A Zipf-skewed multi-model trace (hot head, long cold tail).

    ``skew`` is the Zipf exponent: higher concentrates more traffic on
    the first models, which is the regime FnPacker targets.
    """
    if not model_ids:
        raise ConfigError("need at least one model id")
    if total_rate_rps <= 0 or duration_s <= 0:
        raise ConfigError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(model_ids) + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    arrivals: List[Arrival] = []
    t = float(rng.exponential(1.0 / total_rate_rps))
    while t < duration_s:
        model = model_ids[int(rng.choice(len(model_ids), p=weights))]
        arrivals.append(Arrival(time=t, model_id=model, user_id="trace-user"))
        t += float(rng.exponential(1.0 / total_rate_rps))
    return arrivals
