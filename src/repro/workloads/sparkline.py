"""Unicode sparklines for rendering timelines in text reports.

The MMPP experiments produce latency-over-time series (Figure 13's
plots); the report renders them inline as block-character sparklines so
the burst/recovery dynamics are visible without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """Render ``values`` as a block-character sparkline.

    ``lo``/``hi`` pin the scale (useful for comparing several lines);
    they default to the series' own range.  A flat series renders as a
    row of low blocks rather than dividing by zero.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BARS[0] * len(values)
    out = []
    for value in values:
        position = (value - lo) / span
        index = min(int(position * len(_BARS)), len(_BARS) - 1)
        out.append(_BARS[max(index, 0)])
    return "".join(out)


def labelled_sparkline(label: str, values: Sequence[float],
                       unit: str = "s", width: int = 12) -> str:
    """One report line: label, sparkline, and the min/max annotations."""
    if not values:
        return f"{label:<{width}} (no data)"
    line = sparkline(values)
    return (
        f"{label:<{width}} {line}  "
        f"[{min(values):.2f}{unit} .. {max(values):.2f}{unit}]"
    )
