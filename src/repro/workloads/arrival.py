"""Arrival processes for the evaluation workloads.

- fixed-rate streams (the single-node rate sweeps of Figure 12);
- Poisson arrivals (popular-model traffic in the FnPacker experiments);
- Markov-modulated Poisson process alternating between two mean rates
  (the multi-node workload of Figures 13/14, following MArk/BATCH);
- interactive sessions in which one user queries a set of models
  sequentially (the MLPerf-style scenario of Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which model, which user."""

    time: float
    model_id: str
    user_id: str


def fixed_rate(
    rate_rps: float, duration_s: float, model_id: str, user_id: str = "user"
) -> List[Arrival]:
    """Evenly-spaced arrivals at ``rate_rps`` for ``duration_s``."""
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    interval = 1.0 / rate_rps
    count = int(duration_s * rate_rps)
    return [
        Arrival(time=i * interval, model_id=model_id, user_id=user_id)
        for i in range(count)
    ]


def poisson(
    rate_rps: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """Poisson arrivals at mean ``rate_rps`` for ``duration_s``."""
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[Arrival] = []
    t = float(rng.exponential(1.0 / rate_rps))
    while t < duration_s:
        arrivals.append(Arrival(time=t, model_id=model_id, user_id=user_id))
        t += float(rng.exponential(1.0 / rate_rps))
    return arrivals


def mmpp(
    rates_rps: Sequence[float],
    phase_s: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """Markov-modulated Poisson process cycling through ``rates_rps``.

    The paper's workload alternates the mean rate between 20 and 40 rps
    (Section VI-C); each phase lasts ``phase_s`` seconds.
    """
    if not rates_rps:
        raise ConfigError("mmpp needs at least one phase rate")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[Arrival] = []
    phase_start = 0.0
    phase_index = 0
    while phase_start < duration_s:
        rate = rates_rps[phase_index % len(rates_rps)]
        phase_end = min(phase_start + phase_s, duration_s)
        t = phase_start + float(rng.exponential(1.0 / rate))
        while t < phase_end:
            arrivals.append(Arrival(time=t, model_id=model_id, user_id=user_id))
            t += float(rng.exponential(1.0 / rate))
        phase_start = phase_end
        phase_index += 1
    return arrivals


@dataclass(frozen=True)
class Session:
    """An interactive session: models queried one after another.

    The next query is issued only after the previous response arrives
    (a user trying several models on the same sample, Section VI-D).
    """

    start_time: float
    models: Tuple[str, ...]
    user_id: str = "analyst"

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigError("a session needs at least one model")


def merge_arrivals(*streams: Sequence[Arrival]) -> List[Arrival]:
    """Merge several arrival streams into one time-ordered list."""
    merged = [a for stream in streams for a in stream]
    merged.sort(key=lambda a: a.time)
    return merged
