"""Arrival processes for the evaluation workloads.

- fixed-rate streams (the single-node rate sweeps of Figure 12);
- Poisson arrivals (popular-model traffic in the FnPacker experiments);
- Markov-modulated Poisson process alternating between two mean rates
  (the multi-node workload of Figures 13/14, following MArk/BATCH);
- diurnal traffic: a sinusoidal rate swing between a base and a peak,
  sampled by thinning a peak-rate Poisson stream;
- burst traffic: a Poisson base stream plus a flash-crowd window at a
  higher rate;
- interactive sessions in which one user queries a set of models
  sequentially (the MLPerf-style scenario of Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, which model, which user."""

    time: float
    model_id: str
    user_id: str


def fixed_rate(
    rate_rps: float, duration_s: float, model_id: str, user_id: str = "user"
) -> List[Arrival]:
    """Evenly-spaced arrivals at ``rate_rps`` for ``duration_s``."""
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    interval = 1.0 / rate_rps
    count = int(duration_s * rate_rps)
    return [
        Arrival(time=i * interval, model_id=model_id, user_id=user_id)
        for i in range(count)
    ]


def poisson(
    rate_rps: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """Poisson arrivals at mean ``rate_rps`` for ``duration_s``."""
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[Arrival] = []
    t = float(rng.exponential(1.0 / rate_rps))
    while t < duration_s:
        arrivals.append(Arrival(time=t, model_id=model_id, user_id=user_id))
        t += float(rng.exponential(1.0 / rate_rps))
    return arrivals


def mmpp(
    rates_rps: Sequence[float],
    phase_s: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """Markov-modulated Poisson process cycling through ``rates_rps``.

    The paper's workload alternates the mean rate between 20 and 40 rps
    (Section VI-C); each phase lasts ``phase_s`` seconds.
    """
    if not rates_rps:
        raise ConfigError("mmpp needs at least one phase rate")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[Arrival] = []
    phase_start = 0.0
    phase_index = 0
    while phase_start < duration_s:
        rate = rates_rps[phase_index % len(rates_rps)]
        phase_end = min(phase_start + phase_s, duration_s)
        t = phase_start + float(rng.exponential(1.0 / rate))
        while t < phase_end:
            arrivals.append(Arrival(time=t, model_id=model_id, user_id=user_id))
            t += float(rng.exponential(1.0 / rate))
        phase_start = phase_end
        phase_index += 1
    return arrivals


def diurnal(
    peak_rps: float,
    base_rps: float,
    period_s: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """A sinusoidal day/night rate swing between ``base_rps`` and ``peak_rps``.

    The instantaneous rate is ``base + (peak - base) * (1 - cos(2*pi*t /
    period)) / 2`` -- the trough sits at ``t = 0``, the peak half a
    period later.  Sampled by thinning a homogeneous ``peak_rps``
    Poisson stream, so the output is an exact inhomogeneous Poisson
    process and fully determined by ``rng``.
    """
    if peak_rps <= 0:
        raise ConfigError("peak rate must be positive")
    if not 0 <= base_rps <= peak_rps:
        raise ConfigError("base rate must be within [0, peak rate]")
    if period_s <= 0:
        raise ConfigError("period must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    arrivals: List[Arrival] = []
    t = float(rng.exponential(1.0 / peak_rps))
    while t < duration_s:
        rate = base_rps + (peak_rps - base_rps) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * t / period_s)
        )
        if float(rng.random()) < rate / peak_rps:
            arrivals.append(Arrival(time=t, model_id=model_id, user_id=user_id))
        t += float(rng.exponential(1.0 / peak_rps))
    return arrivals


def burst(
    base_rps: float,
    burst_rps: float,
    burst_start_s: float,
    burst_duration_s: float,
    duration_s: float,
    model_id: str,
    user_id: str = "user",
    rng: np.random.Generator | None = None,
) -> List[Arrival]:
    """A Poisson base stream plus a flash-crowd window.

    Extra arrivals at ``burst_rps`` land inside ``[burst_start_s,
    burst_start_s + burst_duration_s)`` on top of the ``base_rps``
    stream (rates add, matching the superposition property).  The base
    stream is drawn first, then the burst, so one seeded ``rng``
    reproduces the trace exactly.
    """
    if base_rps <= 0:
        raise ConfigError("base rate must be positive")
    if burst_rps < 0 or burst_duration_s < 0 or burst_start_s < 0:
        raise ConfigError("burst window must be non-negative")
    rng = rng if rng is not None else np.random.default_rng(0)
    base = poisson(base_rps, duration_s, model_id, user_id=user_id, rng=rng)
    if burst_rps == 0 or burst_duration_s == 0:
        return base
    window_end = min(burst_start_s + burst_duration_s, duration_s)
    window = max(0.0, window_end - burst_start_s)
    extra = poisson(burst_rps, window, model_id, user_id=user_id, rng=rng)
    shifted = [
        Arrival(time=a.time + burst_start_s, model_id=a.model_id,
                user_id=a.user_id)
        for a in extra
    ]
    return merge_arrivals(base, shifted)


@dataclass(frozen=True)
class Session:
    """An interactive session: models queried one after another.

    The next query is issued only after the previous response arrives
    (a user trying several models on the same sample, Section VI-D).
    """

    start_time: float
    models: Tuple[str, ...]
    user_id: str = "analyst"

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigError("a session needs at least one model")


def merge_arrivals(*streams: Sequence[Arrival]) -> List[Arrival]:
    """Merge several arrival streams into one time-ordered list."""
    merged = [a for stream in streams for a in stream]
    merged.sort(key=lambda a: a.time)
    return merged
