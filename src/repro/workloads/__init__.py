"""Workload generation, request driving, and metrics."""

from repro.workloads.arrival import (
    Arrival,
    Session,
    fixed_rate,
    merge_arrivals,
    mmpp,
    poisson,
)
from repro.workloads.driver import DriverReport, WorkloadDriver
from repro.workloads.metrics import (
    LatencyStats,
    gb_seconds,
    kind_counts,
    latency_timeline,
    stage_fractions,
    throughput_rps,
)
from repro.workloads.mlperf import FnPackerWorkload, build_fnpacker_workload
from repro.workloads.sparkline import labelled_sparkline, sparkline
from repro.workloads.trace import (
    format_trace_csv,
    parse_trace_csv,
    synthesize_skewed_trace,
)

__all__ = [
    "Arrival",
    "DriverReport",
    "FnPackerWorkload",
    "LatencyStats",
    "Session",
    "WorkloadDriver",
    "build_fnpacker_workload",
    "fixed_rate",
    "format_trace_csv",
    "gb_seconds",
    "kind_counts",
    "labelled_sparkline",
    "latency_timeline",
    "merge_arrivals",
    "mmpp",
    "parse_trace_csv",
    "poisson",
    "sparkline",
    "stage_fractions",
    "synthesize_skewed_trace",
    "throughput_rps",
]
