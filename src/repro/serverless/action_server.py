"""The OpenWhisk action interface (`/init`, `/run`) for SeMIRT hosts.

OpenWhisk talks to a container through two HTTP endpoints: ``/init``
(once, with the action's configuration) and ``/run`` (per activation,
with the request parameters).  The paper implements "an asynchronous
server conforming to the OpenWhisk specified action interface" around
SeMIRT (Section V); this module is that adapter for the functional
stack: request/response bodies are dicts shaped like the OpenWhisk
protocol, binary payloads are hex-encoded as they would be base64 on the
wire, and errors map to the protocol's status codes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.semirt import SemirtHost
from repro.errors import AccessDenied, InvocationError, ReproError

OK = 200
BAD_REQUEST = 400
FORBIDDEN = 403
CONFLICT = 409
SERVER_ERROR = 502


class ActionServer:
    """A container-local server speaking the OpenWhisk action protocol."""

    def __init__(self, semirt: SemirtHost) -> None:
        self._semirt = semirt
        self._initialized = False
        self._action_name: Optional[str] = None
        self.activations = 0

    # -- /init ---------------------------------------------------------------

    def init(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Handle the one-time ``/init`` call.

        OpenWhisk sends ``{"value": {"name": ..., "binary": ..., ...}}``;
        a second init on a warm container is a protocol error (409).
        """
        if self._initialized:
            return {"status": CONFLICT, "error": "container already initialised"}
        value = body.get("value")
        if not isinstance(value, dict) or "name" not in value:
            return {"status": BAD_REQUEST, "error": "malformed init payload"}
        self._action_name = value["name"]
        self._initialized = True
        return {"status": OK, "ok": True}

    # -- /run ----------------------------------------------------------------

    def run(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Handle one activation.

        Expected parameters (the SeSeMI function signature):
        ``request`` (hex AES-GCM ciphertext), ``uid``, ``model_id``.
        The response carries the encrypted output, hex-encoded.
        """
        if not self._initialized:
            return {"status": BAD_REQUEST, "error": "container not initialised"}
        value = body.get("value")
        if not isinstance(value, dict):
            return {"status": BAD_REQUEST, "error": "missing activation value"}
        missing = [k for k in ("request", "uid", "model_id") if k not in value]
        if missing:
            return {
                "status": BAD_REQUEST,
                "error": f"missing parameters: {', '.join(missing)}",
            }
        try:
            enc_request = bytes.fromhex(value["request"])
        except (ValueError, TypeError):
            return {"status": BAD_REQUEST, "error": "request is not valid hex"}
        self.activations += 1
        try:
            enc_response = self._semirt.infer(
                enc_request, value["uid"], value["model_id"]
            )
        except AccessDenied as exc:
            return {"status": FORBIDDEN, "error": str(exc)}
        except (InvocationError, ReproError) as exc:
            return {"status": SERVER_ERROR, "error": str(exc)}
        return {"status": OK, "response": enc_response.hex()}

    # -- introspection ----------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def action_name(self) -> Optional[str]:
        return self._action_name
