"""The serverless controller: scheduling, cold starts, keep-alive.

Reproduces the OpenWhisk behaviours the evaluation depends on:

- requests pass through a serial controller/proxy path (a fixed
  per-request overhead that bounds single-node throughput);
- warm containers with a free concurrency slot are preferred; otherwise a
  new container cold-starts on a node chosen by memory availability, with
  a home-node preference ("OpenWhisk ... preferably launches instances of
  a function on the same machine", Section VI-C);
- when no node can fit the container budget the request queues FIFO;
- idle containers are reclaimed after a keep-alive timeout (3 minutes in
  Table V), releasing their memory.

The controller also records a memory-reservation timeline, which is what
the paper integrates into GB-seconds for the cost results (Figure 14).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer
    from repro.serverless.telemetry import MetricsRegistry

from repro.errors import PlatformError
from repro.serverless.action import ActionSpec, InvocationResult, Request
from repro.serverless.container import ActionRuntime, Container, ContainerContext
from repro.serverless.invoker import Invoker
from repro.sim.core import Event, Simulation
from repro.sim.resources import Resource

RuntimeFactory = Callable[[], ActionRuntime]


@dataclass(frozen=True)
class PlatformConfig:
    """Tunable platform parameters (paper defaults from Table V)."""

    sandbox_init_s: float = 2.5       # pull (cached) + start one SGX sandbox
    keepalive_s: float = 180.0        # container unused timeout: 3 minutes
    controller_overhead_s: float = 0.0215  # serial proxy work per request


@dataclass
class _Deployment:
    spec: ActionSpec
    factory: RuntimeFactory
    containers: List[Container] = field(default_factory=list)
    pending: Deque[Tuple[Request, Event]] = field(default_factory=deque)


class Controller:
    """Schedules requests over a set of invoker nodes."""

    def __init__(
        self,
        sim: Simulation,
        nodes: List[Invoker],
        config: Optional[PlatformConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if not nodes:
            raise PlatformError("a platform needs at least one invoker node")
        self.sim = sim
        self.nodes = nodes
        self.config = config if config is not None else PlatformConfig()
        self.tracer = tracer
        self._deployments: Dict[str, _Deployment] = {}
        self._overhead = Resource(sim, capacity=1, name="controller")
        #: (time, reserved_bytes) samples; one per reservation change
        self.memory_timeline: List[Tuple[float, int]] = [(0.0, 0)]
        self.cold_starts = 0
        self.completed = 0
        self.metrics = metrics
        self._active_containers = 0
        self._draining: set = set()

    # -- deployment -----------------------------------------------------------

    def deploy(self, spec: ActionSpec, factory: RuntimeFactory) -> None:
        """Register an action with the platform."""
        if spec.name in self._deployments:
            raise PlatformError(f"action {spec.name!r} already deployed")
        self._deployments[spec.name] = _Deployment(spec=spec, factory=factory)

    def deployment(self, name: str) -> _Deployment:
        """Look up a deployed action (raises for unknown names)."""
        try:
            return self._deployments[name]
        except KeyError:
            raise PlatformError(f"action {name!r} is not deployed") from None

    # -- invocation -------------------------------------------------------------

    def invoke(self, action_name: str, request: Request) -> Event:
        """Submit ``request`` to ``action_name``; returns the completion event."""
        deployment = self.deployment(action_name)
        request.submitted_at = self.sim.now
        if self.tracer is not None and request.span is None:
            request.span = self.tracer.start_span(
                "request",
                request_id=request.request_id,
                model_id=request.model_id,
                user_id=request.user_id,
            )
        done = self.sim.event()
        self.sim.process(
            self._admission(deployment, request, done),
            name=f"admit:{request.request_id}",
        )
        return done

    def _admission(self, deployment: _Deployment, request: Request, done: Event):
        span = None
        if self.tracer is not None and request.span is not None:
            span = self.tracer.start_span("controller_admission", parent=request.span)
        claim = self._overhead.request()
        yield claim
        try:
            yield self.sim.timeout(self.config.controller_overhead_s)
        finally:
            self._overhead.release(claim)
            if span is not None:
                span.end()
        self._dispatch(deployment, request, done)

    # -- scheduling -----------------------------------------------------------------

    def _dispatch(self, deployment: _Deployment, request: Request, done: Event) -> None:
        container = self._pick_warm(deployment)
        if container is None:
            node = self._place(deployment.spec)
            if node is not None:
                container = self._create_container(deployment, node)
        if container is None:
            deployment.pending.append((request, done))
            return
        self._assign(deployment, container, request, done)

    def _pick_warm(self, deployment: _Deployment) -> Optional[Container]:
        """Most-recently-used warm container with a free slot."""
        candidates = [c for c in deployment.containers if c.has_free_slot]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.last_used)

    def _place(self, spec: ActionSpec) -> Optional[Invoker]:
        """Home-node-first placement on memory availability."""
        home = hash(spec.name) % len(self.nodes)
        ordering = self.nodes[home:] + self.nodes[:home]
        for node in ordering:
            if node.node_id in self._draining:
                continue
            if node.can_fit(spec.memory_budget):
                return node
        return None

    def _record_memory(self) -> None:
        reserved = sum(node.memory_used for node in self.nodes)
        self.memory_timeline.append((self.sim.now, reserved))
        if self.metrics is not None:
            self.metrics.time_series("memory.reserved.bytes").record(
                self.sim.now, reserved
            )
            self.metrics.time_series("containers.active").record(
                self.sim.now, self._active_containers
            )

    def _create_container(self, deployment: _Deployment, node: Invoker) -> Container:
        node.reserve_memory(deployment.spec.memory_budget)
        self._active_containers += 1
        self._record_memory()
        self.cold_starts += 1
        if self.metrics is not None:
            self.metrics.counter("containers.cold_starts").inc()
        runtime = deployment.factory()
        container = Container(
            spec=deployment.spec, node=node, runtime=runtime, created_at=self.sim.now
        )
        container.ready_event = self.sim.event()
        deployment.containers.append(container)
        self.sim.process(
            self._startup(container), name=f"startup:{container.container_id}"
        )
        return container

    def _startup(self, container: Container):
        root = None
        if self.tracer is not None:
            root = self.tracer.start_span(
                "container.startup",
                container_id=container.container_id,
                node_id=container.node.node_id,
                action=container.spec.name,
            )
            sandbox = self.tracer.start_span(
                "stage:sandbox_init", parent=root, stage="sandbox_init"
            )
        yield self.sim.timeout(self.config.sandbox_init_s)
        if root is not None:
            sandbox.end()
        ctx = ContainerContext(
            sim=self.sim,
            node=container.node,
            container=container,
            tracer=self.tracer,
            span=root,
        )
        yield from container.runtime.startup(ctx)
        if root is not None:
            root.end()
        container.ready = True
        container.ready_event.succeed()
        # Arm keep-alive even if the container never serves a request
        # (e.g. it was over-provisioned during a cold-start burst).
        self.sim.process(
            self._reaper(container), name=f"reap0:{container.container_id}"
        )

    def _assign(
        self,
        deployment: _Deployment,
        container: Container,
        request: Request,
        done: Event,
    ) -> None:
        container.in_flight += 1
        container.last_used = self.sim.now
        self.sim.process(
            self._serve(deployment, container, request, done),
            name=f"serve:{request.request_id}",
        )

    def _serve(
        self,
        deployment: _Deployment,
        container: Container,
        request: Request,
        done: Event,
    ):
        waited_for_startup = not container.ready
        if waited_for_startup:
            yield container.ready_event
        started = self.sim.now
        serve_span = None
        if self.tracer is not None and request.span is not None:
            serve_span = self.tracer.start_span(
                "serve",
                parent=request.span,
                container_id=container.container_id,
                node_id=container.node.node_id,
            )
            if waited_for_startup:
                # Link the trace of the cold start this request adopted.
                serve_span.set_attribute(
                    "adopted_startup", container.container_id
                )
        ctx = ContainerContext(
            sim=self.sim,
            node=container.node,
            container=container,
            tracer=self.tracer,
            span=serve_span,
        )
        response, kind, stages = yield from container.runtime.handle(ctx, request)
        if waited_for_startup:
            # The sandbox (and, for SeMIRT, its enclave) was created for
            # this request: a platform-level cold start.  Fold the startup
            # stages into this request's accounting.
            kind = "cold"
            stages = {
                "sandbox_init": self.config.sandbox_init_s,
                **container.runtime.startup_stage_seconds,
                **stages,
            }
        container.in_flight -= 1
        container.last_used = self.sim.now
        self.completed += 1
        if serve_span is not None:
            serve_span.set_attribute("flavor", kind)
            serve_span.end()
            request.span.set_attribute("flavor", kind)
            request.span.end()
        if self.metrics is not None:
            self.metrics.counter("requests.completed").inc()
            self.metrics.counter(f"invocations.{kind}").inc()
            self.metrics.histogram("latency.seconds").observe(
                self.sim.now - request.submitted_at
            )
        done.succeed(
            InvocationResult(
                request=request,
                response=response,
                kind=kind,
                container_id=container.container_id,
                node_id=container.node.node_id,
                submitted_at=request.submitted_at,
                started_at=started,
                finished_at=self.sim.now,
                stage_seconds=stages,
            )
        )
        self._drain(deployment)
        if (
            container.node.node_id in self._draining
            and container.idle
            and not container.destroyed
        ):
            self._destroy(container)
        else:
            self.sim.process(
                self._reaper(container), name=f"reap:{container.container_id}"
            )

    def _drain(self, deployment: _Deployment) -> None:
        """Feed queued requests into any free capacity."""
        while deployment.pending:
            container = self._pick_warm(deployment)
            if container is None:
                node = self._place(deployment.spec)
                if node is None:
                    return
                container = self._create_container(deployment, node)
            request, done = deployment.pending.popleft()
            self._assign(deployment, container, request, done)

    # -- keep-alive ------------------------------------------------------------------

    def _reaper(self, container: Container):
        yield self.sim.timeout(self.config.keepalive_s)
        expired = (
            not container.destroyed
            and container.idle
            and self.sim.now - container.last_used >= self.config.keepalive_s
        )
        if expired:
            self._destroy(container)

    def _destroy(self, container: Container) -> None:
        container.destroyed = True
        ctx = ContainerContext(sim=self.sim, node=container.node, container=container)
        container.runtime.shutdown(ctx)
        container.node.release_memory(container.spec.memory_budget)
        self._active_containers -= 1
        self._record_memory()
        deployment = self._deployments[container.spec.name]
        if container in deployment.containers:
            deployment.containers.remove(container)
        # Freed memory may unblock queued cold starts of any action.
        for other in self._deployments.values():
            if other.pending:
                self._drain(other)

    # -- maintenance -------------------------------------------------------------------

    def drain_node(self, node: Invoker) -> None:
        """Take a node out of scheduling (cluster maintenance).

        No new containers are placed on it; its idle containers are
        reclaimed immediately, and busy ones as soon as they finish (the
        keep-alive reaper does that naturally).  In-flight requests run
        to completion -- the graceful-drain semantics of real platforms.
        """
        self._draining.add(node.node_id)
        for deployment in list(self._deployments.values()):
            for container in list(deployment.containers):
                if container.node is node and container.idle and container.ready:
                    self._destroy(container)

    def undrain_node(self, node: Invoker) -> None:
        """Return a drained node to the scheduling pool."""
        self._draining.discard(node.node_id)
        for deployment in self._deployments.values():
            if deployment.pending:
                self._drain(deployment)

    def is_draining(self, node: Invoker) -> bool:
        """True while ``node`` is excluded from scheduling."""
        return node.node_id in self._draining

    def retire_action(self, name: str) -> None:
        """Reclaim an action's idle containers (endpoint retirement).

        Busy containers finish their in-flight work and are reaped by
        the keep-alive timer; the deployment record stays so late
        completions still resolve, but with no router sending traffic
        it receives no new requests.
        """
        deployment = self.deployment(name)
        for container in list(deployment.containers):
            if container.idle and container.ready and not container.destroyed:
                self._destroy(container)

    # -- introspection ----------------------------------------------------------------

    def warm_containers(self, action_name: str) -> int:
        """Count of live (non-destroyed) containers for an action."""
        return sum(
            1 for c in self.deployment(action_name).containers if not c.destroyed
        )
