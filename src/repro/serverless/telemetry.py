"""Prometheus-style metrics for the simulated platform.

The paper's testbed deploys Prometheus next to OpenWhisk to collect
container metrics (Appendix F); this module is the equivalent
observability surface for the simulation: counters, gauges, histograms,
and time series that experiments can scrape after a run.

All metrics are pull-free and in-memory; the registry is attached to a
controller at construction and populated as scheduling events happen.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter (amount must be non-negative)."""
        if amount < 0:
            raise ConfigError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can move both ways."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge value."""
        self._value = value

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta``."""
        self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed observations with quantile estimates."""

    DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else self.DEFAULT_BUCKETS)
        )
        if not self.buckets:
            raise ConfigError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # +inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        index = bisect.bisect_left(self.buckets, value)
        self._counts[index] += 1
        self._sum += value
        self._count += 1
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Counts per bucket, labelled Prometheus-style (le=...)."""
        labels = [f"le={b}" for b in self.buckets] + ["le=+inf"]
        return dict(zip(labels, self._counts))

    @property
    def min(self) -> float:
        """Smallest observation so far (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        """Largest observation so far (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile from bucket counts.

        ``q=0`` returns the exact minimum observation (the naive bucket
        scan would return the first bucket bound regardless of where the
        data sits); other quantiles return the upper bound of the bucket
        containing the target rank, ``+inf`` past the last bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        target = q * self._count
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return float("inf")


class TimeSeries:
    """(time, value) samples of a step function, with an integral."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a (time, value) sample; times must not go backwards."""
        if self.samples and time < self.samples[-1][0]:
            raise ConfigError("time series samples must be time-ordered")
        self.samples.append((time, value))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def peak(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def integral(self, until: float) -> float:
        """Integrate the step function from its first sample to ``until``."""
        total = 0.0
        for (t0, level), (t1, _) in zip(self.samples, self.samples[1:]):
            if t0 >= until:
                break
            span = min(t1, until) - t0
            if span > 0:
                total += level * span
        if self.samples:
            t_last, level = self.samples[-1]
            if t_last < until:
                total += level * (until - t_last)
        return total


@dataclass
class MetricsRegistry:
    """Named metric store; metrics are created on first access."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Fetch or create the named counter."""
        return self.counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Fetch or create the named gauge."""
        return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, buckets=None) -> Histogram:
        """Fetch or create the named histogram."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, buckets)
        return self.histograms[name]

    def time_series(self, name: str) -> TimeSeries:
        """Fetch or create the named time series."""
        return self.series.setdefault(name, TimeSeries(name))

    def snapshot(self) -> Dict[str, float]:
        """A flat scrape of current values (counters, gauges, means)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, histogram in self.histograms.items():
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.count"] = float(histogram.count)
            out[f"{name}.p50"] = histogram.quantile(0.50)
            out[f"{name}.p95"] = histogram.quantile(0.95)
            out[f"{name}.p99"] = histogram.quantile(0.99)
        for name, series in self.series.items():
            out[f"{name}.last"] = series.last
        return out
