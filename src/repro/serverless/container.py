"""Sandbox containers and the runtime interface they host.

A :class:`Container` is one sandbox instance scheduled by the controller
onto an invoker node.  What runs inside is an :class:`ActionRuntime` --
the simulation-side counterpart of a container image.  SeSeMI's SeMIRT
image, the *Native* baseline, and the *Iso-reuse* baseline are all
``ActionRuntime`` implementations (see :mod:`repro.core.simbridge`), so
they are scheduled by exactly the same platform logic, as in the paper.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Tuple

from repro.serverless.action import ActionSpec, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serverless.invoker import Invoker
    from repro.sim.core import Simulation

_container_ids = itertools.count(1)


@dataclass
class ContainerContext:
    """What a runtime can see of its surroundings."""

    sim: "Simulation"
    node: "Invoker"
    container: "Container"
    #: tracer observing this platform (``None`` when tracing is off)
    tracer: Any = None
    #: parent span for work done in this context (startup or serve)
    span: Any = None


class ActionRuntime(ABC):
    """The code running inside a container (simulation side).

    ``startup`` and ``handle`` are simulation processes: they yield events
    (timeouts, core requests) and may perform state updates.  ``handle``
    returns ``(response, kind, stage_seconds)`` where ``kind`` is the
    invocation path taken (``"cold"``/``"warm"``/``"hot"``).
    """

    #: stage durations accumulated during ``startup`` (e.g. enclave init);
    #: merged into the first request's stage accounting by the controller.
    startup_stage_seconds: dict = {}

    @abstractmethod
    def startup(self, ctx: ContainerContext) -> Generator:
        """Image-specific initialisation after the sandbox starts."""

    @abstractmethod
    def handle(
        self, ctx: ContainerContext, request: Request
    ) -> Generator[Any, Any, Tuple[Any, str, dict]]:
        """Serve one request."""

    def shutdown(self, ctx: ContainerContext) -> None:
        """Release resources when the container is reclaimed."""

    @property
    def memory_bytes(self) -> int:
        """Current memory footprint attributed to this runtime."""
        return 0


class Container:
    """One sandbox instance bound to an action on a node."""

    def __init__(self, spec: ActionSpec, node: "Invoker", runtime: ActionRuntime,
                 created_at: float) -> None:
        self.container_id = f"container-{next(_container_ids)}"
        self.spec = spec
        self.node = node
        self.runtime = runtime
        self.created_at = created_at
        self.last_used = created_at
        self.in_flight = 0
        self.destroyed = False
        self.ready = False
        #: event that fires when startup completes
        self.ready_event = None  # set by the controller when startup begins

    @property
    def has_free_slot(self) -> bool:
        return (not self.destroyed) and self.in_flight < self.spec.concurrency

    @property
    def idle(self) -> bool:
        return self.in_flight == 0
