"""OpenWhisk-like serverless platform substrate (simulated).

Controller scheduling, invoker nodes with SGX hardware, sandbox
containers with keep-alive, cloud blob storage -- everything SeSeMI's
three components sit on top of, reproduced with the behaviours the
evaluation measures (cold starts, memory-based placement, per-request
controller overhead, 128 MB memory granularity).
"""

from repro.serverless.action import (
    ActionSpec,
    InvocationResult,
    Request,
    round_memory_budget,
)
from repro.serverless.container import ActionRuntime, Container, ContainerContext
from repro.serverless.controller import Controller, PlatformConfig
from repro.serverless.invoker import Invoker
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.storage import AZURE_BLOB, NFS, BlobStore, StorageProfile
from repro.serverless.telemetry import MetricsRegistry

__all__ = [
    "AZURE_BLOB",
    "NFS",
    "ActionRuntime",
    "ActionSpec",
    "BlobStore",
    "Container",
    "ContainerContext",
    "Controller",
    "InvocationResult",
    "Invoker",
    "MetricsRegistry",
    "PlatformConfig",
    "Request",
    "ServerlessPlatform",
    "StorageProfile",
    "round_memory_budget",
]
