"""Action specifications and invocation records.

An *action* is a deployed serverless function: a container image plus a
memory budget (a multiple of 128 MB, the provisioning granularity of the
paper's Table V) and an intra-container concurrency limit (OpenWhisk's
``concurrency`` annotation; SeMIRT sets it to the enclave's TCS count).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

MEMORY_GRANULE = 128 * 1024 * 1024

_invocation_ids = itertools.count(1)


def round_memory_budget(nbytes: int) -> int:
    """Smallest multiple of 128 MB that is >= ``nbytes`` (Table V policy)."""
    if nbytes <= 0:
        raise ConfigError("memory requirement must be positive")
    return ((nbytes + MEMORY_GRANULE - 1) // MEMORY_GRANULE) * MEMORY_GRANULE


@dataclass(frozen=True)
class ActionSpec:
    """A deployable serverless function."""

    name: str
    image: str
    memory_budget: int
    concurrency: int = 1

    def __post_init__(self) -> None:
        if self.memory_budget % MEMORY_GRANULE:
            raise ConfigError(
                f"memory budget {self.memory_budget} is not a multiple of 128 MB; "
                "use round_memory_budget()"
            )
        if self.concurrency < 1:
            raise ConfigError("container concurrency must be >= 1")


@dataclass
class Request:
    """One user invocation travelling through the platform."""

    model_id: str
    user_id: str
    payload: Any = None
    request_id: int = field(default_factory=lambda: next(_invocation_ids))
    submitted_at: float = 0.0
    #: root :class:`~repro.obs.span.Span` of this request's trace; set by
    #: the driver (to cover routing) or the controller, ``None`` untraced
    span: Any = None


@dataclass
class InvocationResult:
    """What the platform hands back for one request."""

    request: Request
    response: Any
    kind: str                      # "cold" | "warm" | "hot"
    container_id: str
    node_id: str
    submitted_at: float
    started_at: float
    finished_at: float
    stage_seconds: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """End-to-end latency the user observes."""
        return self.finished_at - self.submitted_at

    @property
    def execution_seconds(self) -> float:
        """Time spent in the container (what the owner is billed for)."""
        return self.finished_at - self.started_at
