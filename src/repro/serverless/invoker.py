"""Invoker nodes: per-machine CPU, memory pool, and SGX hardware.

An invoker is one cluster node that hosts sandbox containers.  It owns:

- a memory pool from which container budgets are reserved (OpenWhisk
  schedules purely on memory, Table V);
- a core pool modelling the 12 physical cores (CPU-bound inference
  contends here, Figure 11a);
- an :class:`~repro.sgx.platform.SgxPlatform` with its EPC and a single
  quoting enclave -- concurrent enclave launches and quote generations on
  one machine slow each other down (Appendix C).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.errors import PlatformError
from repro.sgx.platform import SGX2, HardwareProfile, SgxPlatform
from repro.sim.core import Simulation
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sgx.attestation import AttestationService

_node_ids = itertools.count(1)


class Invoker:
    """One node available to schedule function instances."""

    def __init__(
        self,
        sim: Simulation,
        memory_bytes: int,
        cores: int = 12,
        hardware: HardwareProfile = SGX2,
        attestation_service: Optional["AttestationService"] = None,
        node_id: Optional[str] = None,
        storage_link: Optional[Resource] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id or f"node-{next(_node_ids)}"
        #: the shared path to cluster storage (one 10 Gbps NFS uplink in
        #: the paper's testbed); concurrent model downloads serialise here
        self.storage_link = storage_link or Resource(
            sim, capacity=1, name=f"{self.node_id}.storage"
        )
        self.memory_total = memory_bytes
        self.memory_used = 0
        self.cores = Resource(sim, capacity=cores, name=f"{self.node_id}.cores")
        self.num_cores = cores
        self.sgx = SgxPlatform(hardware, attestation_service=attestation_service,
                               platform_id=self.node_id)
        #: the single quoting enclave; RA requests serialise through it
        self.quoting = Resource(sim, capacity=1, name=f"{self.node_id}.qe")
        #: the EPC add/extend path admits few truly parallel launches;
        #: concurrent enclave creations queue here.  Two slots reproduce
        #: the appendix anchor (16 concurrent 256 MB launches averaging
        #: ~4 s each on SGX2).
        self.launch_slots = Resource(sim, capacity=2, name=f"{self.node_id}.launch")
        #: enclaves currently in their init phase (introspection)
        self.enclaves_launching = 0

    # -- memory pool -------------------------------------------------------------

    @property
    def memory_free(self) -> int:
        return self.memory_total - self.memory_used

    def can_fit(self, budget: int) -> bool:
        """True when ``budget`` bytes are available in the memory pool."""
        return budget <= self.memory_free

    def reserve_memory(self, budget: int) -> None:
        """Claim ``budget`` bytes for a container (raises if over-committed)."""
        if not self.can_fit(budget):
            raise PlatformError(
                f"{self.node_id}: cannot reserve {budget} bytes "
                f"({self.memory_free} free)"
            )
        self.memory_used += budget

    def release_memory(self, budget: int) -> None:
        """Return a container's memory budget to the pool."""
        if budget > self.memory_used:
            raise PlatformError(f"{self.node_id}: releasing more memory than reserved")
        self.memory_used -= budget

    # -- SGX timing hooks ---------------------------------------------------------

    def enclave_init_time(self, memory_bytes: int) -> float:
        """Service time of one launch once it holds a launch slot.

        Queueing on :attr:`launch_slots` models launch concurrency; the
        service time itself is the uncontended init cost, stretched by
        EPC paging when the enclave would overcommit the EPC (SGX1).
        """
        paging = self.sgx.epc.slowdown_for_working_set(memory_bytes)
        return self.sgx.profile.enclave_init_time(memory_bytes, concurrent=1) * paging

    def quote_time(self) -> float:
        """Quote latency given current quoting-enclave queue pressure."""
        concurrent = self.quoting.in_use + self.quoting.queue_length + 1
        return self.sgx.profile.quote_time(concurrent)
