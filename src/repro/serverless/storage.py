"""Cloud blob storage: real bytes, modelled download latency.

The model owner uploads *encrypted* model artifacts here; serverless
instances download them during the model-loading stage.  The store keeps
the actual bytes (so functional paths decrypt real artifacts) and models
download latency as ``base + size / bandwidth``, with two presets:

- :data:`NFS` -- the cluster network file system the paper's testbed used
  to emulate cloud storage;
- :data:`AZURE_BLOB` -- calibrated against the in-region download times
  quoted in Section VI-A (MBNET ~180 ms, DSNET ~360 ms, RSNET ~2100 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import StorageError

MB = 1024 * 1024


@dataclass(frozen=True)
class StorageProfile:
    """Latency parameters of one storage tier."""

    name: str
    base_latency_s: float
    bandwidth_bytes_per_s: float

    def download_time(self, nbytes: int) -> float:
        """Seconds to fetch an object of ``nbytes``."""
        return self.base_latency_s + nbytes / self.bandwidth_bytes_per_s


#: Cluster NFS over 10 Gbps Ethernet (the testbed's storage emulation).
#: 10 Gbps ~ 1.25 GB/s of aggregate payload bandwidth.
NFS = StorageProfile(name="nfs", base_latency_s=0.004, bandwidth_bytes_per_s=1250 * MB)

#: Azure Blob, same region; a least-squares fit of the paper's published
#: 180/360/2100 ms downloads for the 17/44/170 MB models.
AZURE_BLOB = StorageProfile(
    name="azure-blob", base_latency_s=0.05, bandwidth_bytes_per_s=95 * MB
)


@dataclass(frozen=True)
class BlobMeta:
    """Metadata of one stored object."""

    key: str
    nbytes: int


class BlobStore:
    """A key/value object store with a latency model attached."""

    def __init__(self, profile: StorageProfile = NFS) -> None:
        self.profile = profile
        self._objects: Dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> BlobMeta:
        """Upload ``data`` under ``key`` (overwrites)."""
        self._objects[key] = bytes(data)
        return BlobMeta(key=key, nbytes=len(data))

    def get(self, key: str) -> bytes:
        """Fetch the object bytes; raises :class:`StorageError` if absent."""
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"no object stored under {key!r}") from None

    def head(self, key: str) -> BlobMeta:
        """Metadata without transferring the payload."""
        return BlobMeta(key=key, nbytes=len(self.get(key)))

    def delete(self, key: str) -> None:
        """Remove an object (idempotent)."""
        self._objects.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def download_time(self, key: str) -> float:
        """Modelled latency for downloading ``key`` in full."""
        return self.profile.download_time(self.head(key).nbytes)

    def download_time_for_size(self, nbytes: int) -> float:
        """Latency model for a hypothetical object (simulation-only paths)."""
        return self.profile.download_time(nbytes)
