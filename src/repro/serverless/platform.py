"""Facade tying nodes + controller + storage into one platform object."""

from __future__ import annotations

from typing import List, Optional

from repro.serverless.controller import Controller, PlatformConfig
from repro.serverless.invoker import Invoker
from repro.serverless.storage import NFS, BlobStore, StorageProfile
from repro.sgx.attestation import AttestationService
from repro.sgx.epc import GB
from repro.sgx.platform import SGX2, HardwareProfile
from repro.sim.core import Simulation


class ServerlessPlatform:
    """A cluster: invokers, a controller, shared storage, attestation.

    Mirrors the paper's testbed topology: N invoker nodes schedule
    sandboxes, one logical controller routes requests, a shared store
    holds (encrypted) model artifacts, and a cluster-wide attestation
    service verifies quotes.
    """

    def __init__(
        self,
        sim: Simulation,
        num_nodes: int = 1,
        node_memory: int = 64 * GB,
        cores_per_node: int = 12,
        hardware: HardwareProfile = SGX2,
        storage_profile: StorageProfile = NFS,
        config: Optional[PlatformConfig] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.attestation = AttestationService()
        # All nodes share one storage uplink (the cluster NFS server): at
        # saturation, concurrent model downloads queue behind each other.
        from repro.sim.resources import Resource

        self.storage_link = Resource(sim, capacity=1, name="cluster.storage")
        self.nodes: List[Invoker] = [
            Invoker(
                sim,
                memory_bytes=node_memory,
                cores=cores_per_node,
                hardware=hardware,
                attestation_service=self.attestation,
                storage_link=self.storage_link,
            )
            for _ in range(num_nodes)
        ]
        self.controller = Controller(
            sim,
            self.nodes,
            config if config is not None else PlatformConfig(),
            metrics=metrics,
            tracer=tracer,
        )
        self.storage = BlobStore(storage_profile)
        self.hardware = hardware

    # Convenience pass-throughs -------------------------------------------------

    def deploy(self, spec, factory) -> None:
        """Register an action with the controller."""
        self.controller.deploy(spec, factory)

    def invoke(self, action_name, request):
        """Submit a request; returns the completion event."""
        return self.controller.invoke(action_name, request)
