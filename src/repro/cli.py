"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig9             # print one experiment's table
    python -m repro run table2 fig10     # several at once
    python -m repro report [PATH]        # regenerate EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig15,
    fig17,
    table1,
    table2,
    table34,
)

#: experiment name -> (description, runner returning the rendered report)
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "table1": (
        "Table I: evaluation models and buffer sizes",
        lambda: table1.format_report(table1.run()),
    ),
    "fig8": (
        "Figure 8: cold-invocation stage breakdown",
        lambda: fig8.format_report(fig8.run()),
    ),
    "fig9": (
        "Figure 9: cold/warm/hot vs untrusted paths",
        lambda: fig9.format_report(fig9.run()),
    ),
    "fig10": (
        "Figure 10: enclave memory saving vs concurrency",
        lambda: fig10.format_report(fig10.run()),
    ),
    "fig11": (
        "Figure 11: latency vs concurrency (CPU / EPC bound)",
        lambda: fig11.format_report(fig11.run()),
    ),
    "fig12": (
        "Figure 12: single-node rate sweeps (quick grid)",
        lambda: fig12.format_report(fig12.run(quick=True)),
    ),
    "fig13": (
        "Figures 13/14: multi-node MMPP latency and GB-s cost",
        lambda: fig13.format_report(fig13.run(duration_s=240.0)),
    ),
    "table2": (
        "Table II: strong-isolation overhead",
        lambda: table2.format_report(table2.run()),
    ),
    "table34": (
        "Tables III/IV: FnPacker vs baselines",
        lambda: table34.format_report(table34.run()),
    ),
    "fig15": (
        "Figures 15/16: enclave launch + attestation overhead",
        lambda: fig15.format_report(fig15.run()),
    ),
    "fig17": (
        "Figures 17/18: breakdown with vs without SGX",
        lambda: fig17.format_report(fig17.run()),
    ),
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_run(names) -> int:
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` to see what exists", file=sys.stderr)
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"=== {name}: {description} ===")
        started = time.time()
        print(runner())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


def _cmd_report(path: str) -> int:
    from repro.experiments.report import build_report

    started = time.time()
    with open(path, "w") as handle:
        handle.write(build_report())
    print(f"wrote {path} in {time.time() - started:.1f}s")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeSeMI reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names")
    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names)
    if args.command == "report":
        return _cmd_report(args.path)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
