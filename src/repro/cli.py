"""Command-line interface: list, run, and trace the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig9             # print one experiment's table
    python -m repro run table2 fig10     # several at once
    python -m repro run fig8 --json      # raw result as JSON
    python -m repro run fig12 --seed 7   # seed the global RNGs first
    python -m repro trace fig8           # dump a chrome://tracing file
    python -m repro report [PATH]        # regenerate EXPERIMENTS.md

    python -m repro scenario list        # registered specs + stored runs
    python -m repro scenario run NAME    # execute + persist one scenario
    python -m repro scenario compare A B # diff two stored runs
    python -m repro scenario report      # markdown summary of the store

Experiments self-register through the :func:`experiment` decorator into
the :data:`EXPERIMENTS` registry; trace sources register through
:func:`trace_source` into :data:`TRACES`.

The benchmark subcommands (``chaos``, ``warmpool``, ...) share their
common flags (``--json``, ``--seed``, ``--requests``, ``--paced-ms``)
through argparse parent parsers built by the ``_*_parent`` helpers, and
every subparser binds its handler with ``set_defaults(handler=...)`` --
adding a command means adding one parser and one handler, not another
arm of an if-chain.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    batching,
    chaos,
    concurrency,
    fig8,
    gateway,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig15,
    fig17,
    hotpath,
    service,
    streaming,
    table1,
    table2,
    table34,
    warmpool,
)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a raw runner plus a renderer.

    Iterating yields ``(description, report_runner)`` so older code that
    tuple-unpacked the registry values keeps working.
    """

    name: str
    description: str
    run: Callable[[], dict]
    render: Callable[[dict], str]

    def report(self) -> str:
        """Run the experiment and render its paper-style table."""
        return self.render(self.run())

    def __iter__(self):
        """Back-compat view as the old ``(description, runner)`` pair."""
        yield self.description
        yield self.report


#: experiment name -> :class:`Experiment` (populated by :func:`experiment`)
EXPERIMENTS: Dict[str, Experiment] = {}

#: trace source name -> (description, callable returning finished spans)
TRACES: Dict[str, tuple] = {}


def experiment(name: str, description: str, render: Callable[[dict], str]):
    """Register a function returning an experiment's raw result dict."""

    def register(run: Callable[[], dict]) -> Callable[[], dict]:
        EXPERIMENTS[name] = Experiment(name, description, run, render)
        return run

    return register


def trace_source(name: str, description: str):
    """Register a function returning a finished-span list to export."""

    def register(collect: Callable[[], list]) -> Callable[[], list]:
        TRACES[name] = (description, collect)
        return collect

    return register


# -- registry ---------------------------------------------------------------------

experiment(
    "table1", "Table I: evaluation models and buffer sizes", table1.format_report
)(table1.run)
experiment(
    "fig8", "Figure 8: cold-invocation stage breakdown", fig8.format_report
)(fig8.run)
experiment(
    "fig9", "Figure 9: cold/warm/hot vs untrusted paths", fig9.format_report
)(fig9.run)
experiment(
    "fig10", "Figure 10: enclave memory saving vs concurrency", fig10.format_report
)(fig10.run)
experiment(
    "fig11", "Figure 11: latency vs concurrency (CPU / EPC bound)",
    fig11.format_report,
)(fig11.run)


@experiment(
    "fig12", "Figure 12: single-node rate sweeps (quick grid)", fig12.format_report
)
def _run_fig12() -> dict:
    """Figure 12 on the quick parameter grid."""
    return fig12.run(quick=True)


@experiment(
    "fig13", "Figures 13/14: multi-node MMPP latency and GB-s cost",
    fig13.format_report,
)
def _run_fig13() -> dict:
    """Figures 13/14 with the shortened duration the CLI uses."""
    return fig13.run(duration_s=240.0)


experiment(
    "table2", "Table II: strong-isolation overhead", table2.format_report
)(table2.run)
experiment(
    "table34", "Tables III/IV: FnPacker vs baselines", table34.format_report
)(table34.run)
experiment(
    "fig15", "Figures 15/16: enclave launch + attestation overhead",
    fig15.format_report,
)(fig15.run)
experiment(
    "fig17", "Figures 17/18: breakdown with vs without SGX", fig17.format_report
)(fig17.run)


@experiment(
    "chaos", "Chaos sweep: fault rate vs availability/p99 (quick grid)",
    chaos.format_report,
)
def _run_chaos() -> dict:
    """The chaos sweep on the quick grid (CI-friendly)."""
    return chaos.run(quick=True)


@experiment(
    "concurrency",
    "TCS scheduler: 1- vs 4-TCS hot-path throughput + queue-depth sweep",
    concurrency.format_report,
)
def _run_concurrency() -> dict:
    """The wall-clock concurrency benchmark with its default knobs."""
    return concurrency.run()


@experiment(
    "batching",
    "Live micro-batching: hot-path throughput at batch 4 vs 1 (4-TCS host)",
    batching.format_report,
)
def _run_batching() -> dict:
    """The live micro-batching benchmark with its default knobs."""
    return batching.run()


@experiment(
    "gateway",
    "Routed throughput: one gateway, 1 vs 3 live SeMIRT endpoints",
    gateway.format_report,
)
def _run_gateway() -> dict:
    """The routed-throughput benchmark with its default knobs."""
    return gateway.run()


@experiment(
    "service",
    "HTTP service tier: fast 429 sheds + flat admitted p99 under saturation",
    service.format_report,
)
def _run_service() -> dict:
    """The service-tier saturation benchmark with its default knobs."""
    return service.run()


@experiment(
    "warmpool",
    "Warm-pool policies: cold-start ratios, scale-to-zero, pre-warming",
    warmpool.format_report,
)
def _run_warmpool() -> dict:
    """The warm-pool policy sweep with its default knobs."""
    return warmpool.run()


@experiment(
    "hotpath",
    "Hot-path overhead: binary codec + session/key caches vs the seed path",
    hotpath.format_report,
)
def _run_hotpath() -> dict:
    """The hot-path per-request overhead benchmark with its default knobs."""
    return hotpath.run()


@experiment(
    "streaming",
    "Streaming decode: continuous batching vs per-request, TTFT + tokens/sec",
    streaming.format_report,
)
def _run_streaming() -> dict:
    """The streaming continuous-batching benchmark with its default knobs."""
    return streaming.run()


@trace_source("fig8", "one cold SeSeMI request on the simulated testbed")
def _trace_fig8() -> list:
    """Span dump of one virtual-time cold request (MBNET on TVM)."""
    spans, _ = fig8.traced_cold_request("MBNET", "tvm")
    return spans


@trace_source("fig17", "one cold request on the untrusted runtime")
def _trace_fig17() -> list:
    """Span dump of the non-SGX comparison path of Figures 17/18."""
    spans, _ = fig8.traced_cold_request("MBNET", "tvm", system="Untrusted")
    return spans


@trace_source("chaos", "one resilient chaos run with an injected shard outage")
def _trace_chaos() -> list:
    """Span dump of one deterministic chaos run (logical-clock time)."""
    return chaos.collect_trace()


@trace_source("concurrency", "a paced 4-TCS batch with overlapping ECALL spans")
def _trace_concurrency() -> list:
    """Span dump of one small multi-TCS batch (wall time)."""
    return concurrency.collect_trace()


@trace_source("batching", "a busy-paced burst served through EC_MODEL_INF_BATCH")
def _trace_batching() -> list:
    """Span dump of one small batched burst (wall time)."""
    return batching.collect_trace()


@trace_source("gateway", "a routed multi-model batch over two live endpoints")
def _trace_gateway() -> list:
    """Span dump of one routed batch (route spans included, wall time)."""
    return gateway.collect_trace()


@trace_source("service", "two HTTP inferences: client and server trees joined")
def _trace_service() -> list:
    """Span dump of one service round trip (client -> ECALL, wall time)."""
    return service.collect_trace()


@trace_source("session", "a functional cold+hot inference via the session API")
def _trace_session() -> list:
    """Span dump of two real inferences (cold then hot) in wall time."""
    import numpy as np

    from repro.core.deployment import SeSeMIEnvironment
    from repro.mlrt.zoo import build_mobilenet

    env = SeSeMIEnvironment()
    model = build_mobilenet()
    env.deploy(model, "m", owner="owner").grant("user")
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", "m") as session:
        session.infer(x)
        session.infer(x)
    return env.tracer.finished_spans()


# -- commands ---------------------------------------------------------------------


def _seed_rngs(seed: Optional[int]) -> None:
    """Seed the global RNGs the experiments draw from."""
    if seed is None:
        return
    import numpy as np

    random.seed(seed)
    np.random.seed(seed)


def _json_default(value):
    """JSON fallback for numpy scalars and other non-JSON leaves."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _emit(result: dict, as_json: bool, render: Callable[[dict], str]) -> None:
    """Print a benchmark result: sorted JSON or its paper-style table."""
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(render(result))


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    width = max(len(name) for name in EXPERIMENTS)
    for name, entry in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {entry.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` to see what exists", file=sys.stderr)
        return 2
    _seed_rngs(args.seed)
    collected: Dict[str, dict] = {}
    for name in names:
        entry = EXPERIMENTS[name]
        if args.json:
            collected[name] = entry.run()
            continue
        print(f"=== {name}: {entry.description} ===")
        started = time.time()
        print(entry.report())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    if args.json:
        print(json.dumps(collected, indent=2, default=_json_default))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.name not in TRACES:
        print(f"unknown trace source: {args.name}", file=sys.stderr)
        print(
            f"traceable: {', '.join(sorted(TRACES))}", file=sys.stderr
        )
        return 2
    from repro.obs.export import write_chrome_trace

    description, collect = TRACES[args.name]
    path = args.out or f"trace-{args.name}.json"
    started = time.time()
    spans = collect()
    write_chrome_trace(spans, path, service=f"sesemi:{args.name}")
    print(
        f"wrote {len(spans)} spans ({description}) to {path} "
        f"in {time.time() - started:.1f}s -- open with chrome://tracing"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos sweep with explicit knobs (``repro chaos``)."""
    result = chaos.run(seed=args.seed, requests=args.requests, quick=args.quick)
    _emit(result, args.json, chaos.format_report)
    return 0


def _cmd_concurrency(args: argparse.Namespace) -> int:
    """Run the TCS-scheduler benchmark (``repro concurrency``)."""
    result = concurrency.run(requests=args.requests, paced_ms=args.paced_ms)
    _emit(result, args.json, concurrency.format_report)
    return 0


def _cmd_batching(args: argparse.Namespace) -> int:
    """Run the live micro-batching benchmark (``repro batching``)."""
    result = batching.run(
        requests=args.requests, paced_ms=args.paced_ms,
        max_batch=args.max_batch,
    )
    _emit(result, args.json, batching.format_report)
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Run the routed-throughput benchmark (``repro gateway``)."""
    result = gateway.run(requests=args.requests, paced_ms=args.paced_ms)
    _emit(result, args.json, gateway.format_report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot a live service tier in the foreground (``repro serve``)."""
    from repro.service import serve

    _, svc = service.build_world(
        tcs_count=args.tcs,
        num_endpoints=args.endpoints,
        paced_s=args.paced_ms / 1e3 if args.paced_ms > 0 else None,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        background=False,
        keep_alive_s=args.keep_alive,
        min_warm=args.min_warm,
        warm_strategy=args.warm_strategy,
        prewarm=args.prewarm,
    )
    print(f"models: {', '.join(sorted(svc.handles))}")
    if svc.gateway.warm_pool is not None:
        predictive = " +predictive" if args.prewarm else ""
        print(
            f"warm pool: strategy={args.warm_strategy}{predictive} "
            f"keep_alive={args.keep_alive:.0f}s min_warm={args.min_warm} "
            f"(state under /v1/stats -> warm_pool)"
        )
    try:
        serve(svc)
    finally:
        svc.gateway.close()
    return 0


def _cmd_warmpool(args: argparse.Namespace) -> int:
    """Run the warm-pool sweep (``repro warmpool``); exit 1 on gate fail."""
    result = warmpool.run(duration_s=args.duration, keep_alive_s=args.keep_alive)
    _emit(result, args.json, warmpool.format_report)
    return 0 if result["pass"] else 1


def _cmd_hotpath(args: argparse.Namespace) -> int:
    """Run the hot-path benchmark (``repro hotpath``); exit 1 on gate fail."""
    result = hotpath.run(requests=args.requests)
    _emit(result, args.json, hotpath.format_report)
    return 0 if result["speedup"] >= result["gate"] else 1


def _cmd_streaming(args: argparse.Namespace) -> int:
    """Run the streaming benchmark (``repro streaming``); exit 1 on gate fail."""
    result = streaming.run(streams=args.streams, tokens=args.tokens)
    _emit(result, args.json, streaming.format_report)
    return 0 if result["pass"] else 1


def _cmd_service(args: argparse.Namespace) -> int:
    """Run the saturation benchmark (``repro service``); exit 1 on gate fail."""
    result = service.run(
        duration_s=args.duration, paced_ms=args.paced_ms,
        saturated_clients=args.clients,
    )
    _emit(result, args.json, service.format_report)
    return 0 if result["pass"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    started = time.time()
    with open(args.path, "w") as handle:
        handle.write(build_report())
    print(f"wrote {args.path} in {time.time() - started:.1f}s")
    return 0


# -- scenario commands -------------------------------------------------------------


def _load_spec(name: str):
    """A spec by registry name, or from a JSON file path."""
    from pathlib import Path

    from repro.scenarios import ScenarioSpec, get_scenario

    if name.endswith(".json") or "/" in name:
        return ScenarioSpec.from_json(Path(name).read_text())
    return get_scenario(name)


def _scenario_summary(metrics: dict) -> str:
    """The executor's headline ``summary`` block as a small table."""
    from repro.scenarios import format_table

    summary = metrics.get("summary")
    if not isinstance(summary, dict) or not summary:
        return "(no summary metrics)"
    rows = [(key, summary[key]) for key in sorted(summary)]
    return format_table(["metric", "value"], rows)


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """Execute one scenario; persist manifest (+ trace) under its run ID."""
    from repro.errors import ConfigError
    from repro.scenarios import RunStore, current_git_sha, run_scenario

    try:
        spec = _load_spec(args.name)
        updates: Dict[str, str] = {}
        for item in args.set:
            path, sep, value = item.partition("=")
            if not sep:
                print(f"--set expects PATH=VALUE, got {item!r}", file=sys.stderr)
                return 2
            updates[path] = value
        if args.seed is not None:
            updates["seed"] = str(args.seed)
        if updates:
            spec = spec.with_updates(updates)
    except (ConfigError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    started = time.time()
    result = run_scenario(spec, traced=args.trace)
    trace_json = None
    if args.trace and result.spans:
        from repro.obs.export import to_chrome_trace

        trace_json = to_chrome_trace(
            result.spans, service=f"sesemi:{spec.name}"
        )
    if args.no_save:
        if args.json:
            print(json.dumps(
                result.metrics, indent=2, sort_keys=True,
                default=_json_default,
            ))
        else:
            print(f"run {spec.run_id} ({spec.executor}) "
                  f"in {time.time() - started:.1f}s (not saved)")
            print(_scenario_summary(result.metrics))
        return 0
    store = RunStore(args.store)
    record = store.save(
        spec, result.metrics, git_sha=current_git_sha(),
        trace_json=trace_json,
    )
    if args.json:
        print(store.manifest_path(record.run_id).read_text(), end="")
        return 0
    print(f"run {record.run_id} ({spec.executor}) "
          f"in {time.time() - started:.1f}s")
    print(f"manifest: {store.manifest_path(record.run_id)}")
    if trace_json is not None:
        print(f"trace:    {store.trace_path(record.run_id)}")
    print(_scenario_summary(result.metrics))
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    """Registered scenario specs, then the stored runs (if any)."""
    from repro.scenarios import RunStore, named_scenarios

    specs = named_scenarios()
    width = max(len(name) for name in specs)
    print("registered scenarios:")
    for name, spec in specs.items():
        print(f"  {name:<{width}}  [{spec.executor}] {spec.notes}")
    store = RunStore(args.store)
    runs = store.list_runs()
    print()
    if runs:
        print(f"stored runs under {store.root}:")
        for run_id in runs:
            print(f"  {run_id}")
    else:
        print(f"no stored runs under {store.root}")
    return 0


def _cmd_scenario_compare(args: argparse.Namespace) -> int:
    """Diff two stored runs: spec deltas, then metric deltas."""
    from repro.errors import ConfigError
    from repro.scenarios import RunStore, format_compare, metric_diff, spec_diff

    store = RunStore(args.store)
    try:
        a, b = store.load(args.run_a), store.load(args.run_b)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        diff = metric_diff(a, b)
        payload = {
            "run_a": a.run_id,
            "run_b": b.run_id,
            "spec": [list(row) for row in spec_diff(a, b)],
            "metrics": {
                "common": [list(row) for row in diff["common"]],
                "only_a": diff["only_a"],
                "only_b": diff["only_b"],
            },
        }
        print(json.dumps(payload, indent=2, default=_json_default))
    else:
        print(format_compare(a, b, changed_only=args.changed_only))
    return 0


def _cmd_scenario_report(args: argparse.Namespace) -> int:
    """A markdown summary of every run in the store."""
    from repro.scenarios import RunStore, format_store_report

    store = RunStore(args.store)
    records = [store.load(run_id) for run_id in store.list_runs()]
    text = format_store_report(records)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({len(records)} runs)")
    else:
        print(text, end="")
    return 0


# -- parser assembly ---------------------------------------------------------------


def _json_parent(help_text: str = "emit the raw result dict as JSON"):
    """A reusable ``--json`` flag (the parent-parser idiom)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--json", action="store_true", help=help_text)
    return parent


def _seed_parent(default: Optional[int], help_text: str):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=default, help=help_text)
    return parent


def _requests_parent(default: int, help_text: str):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--requests", type=int, default=default, help=help_text)
    return parent


def _paced_parent(
    default: float,
    help_text: str = "per-request service-time floor in ms (0 disables pacing)",
):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--paced-ms", type=float, default=default, help=help_text
    )
    return parent


def _duration_parent(default: float, help_text: str):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--duration", type=float, default=default, help=help_text
    )
    return parent


def _keep_alive_parent(default: Optional[float], help_text: str):
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--keep-alive", type=float, default=default, metavar="SECONDS",
        help=help_text,
    )
    return parent


def _add_scenario_parsers(sub) -> None:
    """The ``repro scenario`` command group (run/list/compare/report)."""
    scenario_parser = sub.add_parser(
        "scenario",
        help="declarative scenario registry: run, list, compare, report",
    )
    scen_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    store_parent = argparse.ArgumentParser(add_help=False)
    store_parent.add_argument(
        "--store", default="runs",
        help="run-store directory (default: runs/)",
    )
    run_parser = scen_sub.add_parser(
        "run",
        parents=[store_parent,
                 _json_parent("print the persisted manifest as JSON")],
        help="execute one scenario and persist its manifest",
    )
    run_parser.add_argument(
        "name", help="registered scenario name, or a path to a spec JSON file"
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed (changes the run ID)",
    )
    run_parser.add_argument(
        "--set", action="append", default=[], metavar="PATH=VALUE",
        help="dotted spec override, e.g. --set workload.duration_s=60",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="capture spans and write trace.json next to the manifest",
    )
    run_parser.add_argument(
        "--no-save", action="store_true",
        help="run without writing to the store",
    )
    run_parser.set_defaults(handler=_cmd_scenario_run)
    list_parser = scen_sub.add_parser(
        "list", parents=[store_parent],
        help="registered scenarios and stored runs",
    )
    list_parser.set_defaults(handler=_cmd_scenario_list)
    compare_parser = scen_sub.add_parser(
        "compare",
        parents=[store_parent,
                 _json_parent("emit the structured diff as JSON")],
        help="diff two stored runs (spec fields, then metrics)",
    )
    compare_parser.add_argument("run_a", help="first stored run ID")
    compare_parser.add_argument("run_b", help="second stored run ID")
    compare_parser.add_argument(
        "--changed-only", action="store_true",
        help="hide metrics with zero delta",
    )
    compare_parser.set_defaults(handler=_cmd_scenario_compare)
    report_parser = scen_sub.add_parser(
        "report", parents=[store_parent],
        help="markdown summary of every stored run",
    )
    report_parser.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )
    report_parser.set_defaults(handler=_cmd_scenario_report)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeSeMI reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.set_defaults(handler=_cmd_list)
    run_parser = sub.add_parser(
        "run",
        parents=[
            _json_parent("emit raw result dicts as JSON instead of tables"),
            _seed_parent(None, "seed the global RNGs before running"),
        ],
        help="run one or more experiments",
    )
    run_parser.add_argument("names", nargs="+", help="experiment names")
    run_parser.set_defaults(handler=_cmd_run)
    trace_parser = sub.add_parser(
        "trace", help="run a traced workload and dump a chrome://tracing file"
    )
    trace_parser.add_argument("name", help="trace source (see errors for choices)")
    trace_parser.add_argument(
        "--out", default=None, help="output path (default: trace-<name>.json)"
    )
    trace_parser.set_defaults(handler=_cmd_trace)
    chaos_parser = sub.add_parser(
        "chaos",
        parents=[
            _seed_parent(
                2025,
                "fault-plan seed (same seed => identical schedule and numbers)",
            ),
            _requests_parent(40, "requests per run"),
            _json_parent(
                "emit the raw result as sorted JSON (byte-stable per seed)"
            ),
        ],
        help="run the deterministic fault-injection sweep",
    )
    chaos_parser.add_argument(
        "--quick", action="store_true",
        help="small sweep grid and request count (CI smoke)",
    )
    chaos_parser.set_defaults(handler=_cmd_chaos)
    conc_parser = sub.add_parser(
        "concurrency",
        parents=[
            _requests_parent(24, "batch size per throughput run"),
            _paced_parent(50.0),
            _json_parent(),
        ],
        help="run the TCS-scheduler throughput benchmark",
    )
    conc_parser.set_defaults(handler=_cmd_concurrency)
    batch_parser = sub.add_parser(
        "batching",
        parents=[
            _requests_parent(24, "burst size per throughput run"),
            _paced_parent(80.0, "per-request busy service-time floor in ms"),
            _json_parent(),
        ],
        help="run the live micro-batching throughput benchmark",
    )
    batch_parser.add_argument(
        "--max-batch", type=int, default=4,
        help="batch bound for the batched run (clamped to the TCS count)",
    )
    batch_parser.set_defaults(handler=_cmd_batching)
    gw_parser = sub.add_parser(
        "gateway",
        parents=[
            _requests_parent(24, "requests per fleet width"),
            _paced_parent(150.0),
            _json_parent(),
        ],
        help="run the routed-throughput gateway benchmark",
    )
    gw_parser.set_defaults(handler=_cmd_gateway)
    serve_parser = sub.add_parser(
        "serve",
        parents=[
            _paced_parent(0.0),
            _keep_alive_parent(
                None,
                "arm the warm pool: retire endpoints idle this long "
                "(default: warm pool off)",
            ),
        ],
        help="boot the HTTP service tier over a live gateway",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks an ephemeral one)",
    )
    serve_parser.add_argument(
        "--tcs", type=int, default=4, help="TCS count per endpoint"
    )
    serve_parser.add_argument(
        "--endpoints", type=int, default=1, help="endpoints in the pool"
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="admission bound (default: fleet TCS capacity)",
    )
    serve_parser.add_argument(
        "--min-warm", type=int, default=1,
        help="endpoints the janitor always keeps alive (0: scale to zero)",
    )
    serve_parser.add_argument(
        "--warm-strategy", default="lcs", choices=("lcs", "mru", "affinity"),
        help="warm-endpoint reuse policy",
    )
    serve_parser.add_argument(
        "--prewarm", action="store_true",
        help="launch endpoints ahead of predicted demand (EWMA rates)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)
    service_parser = sub.add_parser(
        "service",
        parents=[
            _duration_parent(3.0, "seconds per load phase"),
            _paced_parent(200.0, "per-request service-time floor in ms"),
            _json_parent(
                "emit the raw result dict (the BENCH_service.json artifact)"
            ),
        ],
        help="run the service-tier saturation benchmark",
    )
    service_parser.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop clients in the saturated phase",
    )
    service_parser.set_defaults(handler=_cmd_service)
    warmpool_parser = sub.add_parser(
        "warmpool",
        parents=[
            _duration_parent(240.0, "seconds of workload per policy run"),
            _keep_alive_parent(
                30.0, "keep-alive for the managed policies (seconds)"
            ),
            _json_parent(
                "emit the raw result dict (the BENCH_warmpool.json artifact)"
            ),
        ],
        help="run the warm-pool cold-start policy sweep",
    )
    warmpool_parser.set_defaults(handler=_cmd_warmpool)
    hotpath_parser = sub.add_parser(
        "hotpath",
        parents=[
            _requests_parent(
                60, "timed requests per lane (two users alternating)"
            ),
            _json_parent(
                "emit the raw result dict (the BENCH_hotpath.json artifact)"
            ),
        ],
        help="run the hot-path per-request overhead benchmark",
    )
    hotpath_parser.set_defaults(handler=_cmd_hotpath)
    streaming_parser = sub.add_parser(
        "streaming",
        parents=[
            _json_parent(
                "emit the raw result dict (the BENCH_streaming.json artifact)"
            ),
        ],
        help="run the streaming continuous-batching decode benchmark",
    )
    streaming_parser.add_argument(
        "--streams", type=int, default=4,
        help="concurrent streams per lane (one user, one model)",
    )
    streaming_parser.add_argument(
        "--tokens", type=int, default=32,
        help="tokens decoded per stream",
    )
    streaming_parser.set_defaults(handler=_cmd_streaming)
    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report_parser.set_defaults(handler=_cmd_report)
    _add_scenario_parsers(sub)
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
