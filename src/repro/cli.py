"""Command-line interface: list, run, and trace the paper's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig9             # print one experiment's table
    python -m repro run table2 fig10     # several at once
    python -m repro run fig8 --json      # raw result as JSON
    python -m repro run fig12 --seed 7   # seed the global RNGs first
    python -m repro trace fig8           # dump a chrome://tracing file
    python -m repro report [PATH]        # regenerate EXPERIMENTS.md

Experiments self-register through the :func:`experiment` decorator into
the :data:`EXPERIMENTS` registry; trace sources register through
:func:`trace_source` into :data:`TRACES`.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    batching,
    chaos,
    concurrency,
    fig8,
    gateway,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig15,
    fig17,
    hotpath,
    service,
    table1,
    table2,
    table34,
    warmpool,
)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a raw runner plus a renderer.

    Iterating yields ``(description, report_runner)`` so older code that
    tuple-unpacked the registry values keeps working.
    """

    name: str
    description: str
    run: Callable[[], dict]
    render: Callable[[dict], str]

    def report(self) -> str:
        """Run the experiment and render its paper-style table."""
        return self.render(self.run())

    def __iter__(self):
        """Back-compat view as the old ``(description, runner)`` pair."""
        yield self.description
        yield self.report


#: experiment name -> :class:`Experiment` (populated by :func:`experiment`)
EXPERIMENTS: Dict[str, Experiment] = {}

#: trace source name -> (description, callable returning finished spans)
TRACES: Dict[str, tuple] = {}


def experiment(name: str, description: str, render: Callable[[dict], str]):
    """Register a function returning an experiment's raw result dict."""

    def register(run: Callable[[], dict]) -> Callable[[], dict]:
        EXPERIMENTS[name] = Experiment(name, description, run, render)
        return run

    return register


def trace_source(name: str, description: str):
    """Register a function returning a finished-span list to export."""

    def register(collect: Callable[[], list]) -> Callable[[], list]:
        TRACES[name] = (description, collect)
        return collect

    return register


# -- registry ---------------------------------------------------------------------

experiment(
    "table1", "Table I: evaluation models and buffer sizes", table1.format_report
)(table1.run)
experiment(
    "fig8", "Figure 8: cold-invocation stage breakdown", fig8.format_report
)(fig8.run)
experiment(
    "fig9", "Figure 9: cold/warm/hot vs untrusted paths", fig9.format_report
)(fig9.run)
experiment(
    "fig10", "Figure 10: enclave memory saving vs concurrency", fig10.format_report
)(fig10.run)
experiment(
    "fig11", "Figure 11: latency vs concurrency (CPU / EPC bound)",
    fig11.format_report,
)(fig11.run)


@experiment(
    "fig12", "Figure 12: single-node rate sweeps (quick grid)", fig12.format_report
)
def _run_fig12() -> dict:
    """Figure 12 on the quick parameter grid."""
    return fig12.run(quick=True)


@experiment(
    "fig13", "Figures 13/14: multi-node MMPP latency and GB-s cost",
    fig13.format_report,
)
def _run_fig13() -> dict:
    """Figures 13/14 with the shortened duration the CLI uses."""
    return fig13.run(duration_s=240.0)


experiment(
    "table2", "Table II: strong-isolation overhead", table2.format_report
)(table2.run)
experiment(
    "table34", "Tables III/IV: FnPacker vs baselines", table34.format_report
)(table34.run)
experiment(
    "fig15", "Figures 15/16: enclave launch + attestation overhead",
    fig15.format_report,
)(fig15.run)
experiment(
    "fig17", "Figures 17/18: breakdown with vs without SGX", fig17.format_report
)(fig17.run)


@experiment(
    "chaos", "Chaos sweep: fault rate vs availability/p99 (quick grid)",
    chaos.format_report,
)
def _run_chaos() -> dict:
    """The chaos sweep on the quick grid (CI-friendly)."""
    return chaos.run(quick=True)


@experiment(
    "concurrency",
    "TCS scheduler: 1- vs 4-TCS hot-path throughput + queue-depth sweep",
    concurrency.format_report,
)
def _run_concurrency() -> dict:
    """The wall-clock concurrency benchmark with its default knobs."""
    return concurrency.run()


@experiment(
    "batching",
    "Live micro-batching: hot-path throughput at batch 4 vs 1 (4-TCS host)",
    batching.format_report,
)
def _run_batching() -> dict:
    """The live micro-batching benchmark with its default knobs."""
    return batching.run()


@experiment(
    "gateway",
    "Routed throughput: one gateway, 1 vs 3 live SeMIRT endpoints",
    gateway.format_report,
)
def _run_gateway() -> dict:
    """The routed-throughput benchmark with its default knobs."""
    return gateway.run()


@experiment(
    "service",
    "HTTP service tier: fast 429 sheds + flat admitted p99 under saturation",
    service.format_report,
)
def _run_service() -> dict:
    """The service-tier saturation benchmark with its default knobs."""
    return service.run()


@experiment(
    "warmpool",
    "Warm-pool policies: cold-start ratios, scale-to-zero, pre-warming",
    warmpool.format_report,
)
def _run_warmpool() -> dict:
    """The warm-pool policy sweep with its default knobs."""
    return warmpool.run()


@experiment(
    "hotpath",
    "Hot-path overhead: binary codec + session/key caches vs the seed path",
    hotpath.format_report,
)
def _run_hotpath() -> dict:
    """The hot-path per-request overhead benchmark with its default knobs."""
    return hotpath.run()


@trace_source("fig8", "one cold SeSeMI request on the simulated testbed")
def _trace_fig8() -> list:
    """Span dump of one virtual-time cold request (MBNET on TVM)."""
    spans, _ = fig8.traced_cold_request("MBNET", "tvm")
    return spans


@trace_source("fig17", "one cold request on the untrusted runtime")
def _trace_fig17() -> list:
    """Span dump of the non-SGX comparison path of Figures 17/18."""
    spans, _ = fig8.traced_cold_request("MBNET", "tvm", system="Untrusted")
    return spans


@trace_source("chaos", "one resilient chaos run with an injected shard outage")
def _trace_chaos() -> list:
    """Span dump of one deterministic chaos run (logical-clock time)."""
    return chaos.collect_trace()


@trace_source("concurrency", "a paced 4-TCS batch with overlapping ECALL spans")
def _trace_concurrency() -> list:
    """Span dump of one small multi-TCS batch (wall time)."""
    return concurrency.collect_trace()


@trace_source("batching", "a busy-paced burst served through EC_MODEL_INF_BATCH")
def _trace_batching() -> list:
    """Span dump of one small batched burst (wall time)."""
    return batching.collect_trace()


@trace_source("gateway", "a routed multi-model batch over two live endpoints")
def _trace_gateway() -> list:
    """Span dump of one routed batch (route spans included, wall time)."""
    return gateway.collect_trace()


@trace_source("service", "two HTTP inferences: client and server trees joined")
def _trace_service() -> list:
    """Span dump of one service round trip (client -> ECALL, wall time)."""
    return service.collect_trace()


@trace_source("session", "a functional cold+hot inference via the session API")
def _trace_session() -> list:
    """Span dump of two real inferences (cold then hot) in wall time."""
    import numpy as np

    from repro.core.deployment import SeSeMIEnvironment
    from repro.mlrt.zoo import build_mobilenet

    env = SeSeMIEnvironment()
    model = build_mobilenet()
    env.deploy(model, "m", owner="owner").grant("user")
    x = np.zeros(model.input_spec.shape, dtype=np.float32)
    with env.session("user", "m") as session:
        session.infer(x)
        session.infer(x)
    return env.tracer.finished_spans()


# -- commands ---------------------------------------------------------------------


def _seed_rngs(seed: Optional[int]) -> None:
    """Seed the global RNGs the experiments draw from."""
    if seed is None:
        return
    import numpy as np

    random.seed(seed)
    np.random.seed(seed)


def _json_default(value):
    """JSON fallback for numpy scalars and other non-JSON leaves."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, entry in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {entry.description}")
    return 0


def _cmd_run(names: List[str], as_json: bool, seed: Optional[int]) -> int:
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` to see what exists", file=sys.stderr)
        return 2
    _seed_rngs(seed)
    collected: Dict[str, dict] = {}
    for name in names:
        entry = EXPERIMENTS[name]
        if as_json:
            collected[name] = entry.run()
            continue
        print(f"=== {name}: {entry.description} ===")
        started = time.time()
        print(entry.report())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    if as_json:
        print(json.dumps(collected, indent=2, default=_json_default))
    return 0


def _cmd_trace(name: str, out: Optional[str]) -> int:
    if name not in TRACES:
        print(f"unknown trace source: {name}", file=sys.stderr)
        print(
            f"traceable: {', '.join(sorted(TRACES))}", file=sys.stderr
        )
        return 2
    from repro.obs.export import write_chrome_trace

    description, collect = TRACES[name]
    path = out or f"trace-{name}.json"
    started = time.time()
    spans = collect()
    write_chrome_trace(spans, path, service=f"sesemi:{name}")
    print(
        f"wrote {len(spans)} spans ({description}) to {path} "
        f"in {time.time() - started:.1f}s -- open with chrome://tracing"
    )
    return 0


def _cmd_chaos(seed: int, requests: int, quick: bool, as_json: bool) -> int:
    """Run the chaos sweep with explicit knobs (``repro chaos``)."""
    result = chaos.run(seed=seed, requests=requests, quick=quick)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(chaos.format_report(result))
    return 0


def _cmd_concurrency(
    requests: int, paced_ms: float, as_json: bool
) -> int:
    """Run the TCS-scheduler benchmark (``repro concurrency``)."""
    result = concurrency.run(requests=requests, paced_ms=paced_ms)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(concurrency.format_report(result))
    return 0


def _cmd_batching(
    requests: int, paced_ms: float, max_batch: int, as_json: bool
) -> int:
    """Run the live micro-batching benchmark (``repro batching``)."""
    result = batching.run(
        requests=requests, paced_ms=paced_ms, max_batch=max_batch
    )
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(batching.format_report(result))
    return 0


def _cmd_gateway(requests: int, paced_ms: float, as_json: bool) -> int:
    """Run the routed-throughput benchmark (``repro gateway``)."""
    result = gateway.run(requests=requests, paced_ms=paced_ms)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(gateway.format_report(result))
    return 0


def _cmd_serve(
    host: str, port: int, tcs: int, endpoints: int,
    paced_ms: float, max_inflight: Optional[int],
    keep_alive_s: Optional[float], min_warm: int,
    warm_strategy: str, prewarm: bool,
) -> int:
    """Boot a live service tier in the foreground (``repro serve``)."""
    from repro.service import serve

    _, svc = service.build_world(
        tcs_count=tcs,
        num_endpoints=endpoints,
        paced_s=paced_ms / 1e3 if paced_ms > 0 else None,
        host=host,
        port=port,
        max_inflight=max_inflight,
        background=False,
        keep_alive_s=keep_alive_s,
        min_warm=min_warm,
        warm_strategy=warm_strategy,
        prewarm=prewarm,
    )
    print(f"models: {', '.join(sorted(svc.handles))}")
    if svc.gateway.warm_pool is not None:
        predictive = " +predictive" if prewarm else ""
        print(
            f"warm pool: strategy={warm_strategy}{predictive} "
            f"keep_alive={keep_alive_s:.0f}s min_warm={min_warm} "
            f"(state under /v1/stats -> warm_pool)"
        )
    try:
        serve(svc)
    finally:
        svc.gateway.close()
    return 0


def _cmd_warmpool(duration_s: float, keep_alive_s: float, as_json: bool) -> int:
    """Run the warm-pool sweep (``repro warmpool``); exit 1 on gate fail."""
    result = warmpool.run(duration_s=duration_s, keep_alive_s=keep_alive_s)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(warmpool.format_report(result))
    return 0 if result["pass"] else 1


def _cmd_hotpath(requests: int, as_json: bool) -> int:
    """Run the hot-path benchmark (``repro hotpath``); exit 1 on gate fail."""
    result = hotpath.run(requests=requests)
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(hotpath.format_report(result))
    return 0 if result["speedup"] >= result["gate"] else 1


def _cmd_service(
    duration_s: float, paced_ms: float, clients: int, as_json: bool
) -> int:
    """Run the saturation benchmark (``repro service``); exit 1 on gate fail."""
    result = service.run(
        duration_s=duration_s, paced_ms=paced_ms, saturated_clients=clients
    )
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True, default=_json_default))
    else:
        print(service.format_report(result))
    return 0 if result["pass"] else 1


def _cmd_report(path: str) -> int:
    from repro.experiments.report import build_report

    started = time.time()
    with open(path, "w") as handle:
        handle.write(build_report())
    print(f"wrote {path} in {time.time() - started:.1f}s")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeSeMI reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names")
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit raw result dicts as JSON instead of tables",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="seed the global RNGs before running",
    )
    trace_parser = sub.add_parser(
        "trace", help="run a traced workload and dump a chrome://tracing file"
    )
    trace_parser.add_argument("name", help="trace source (see errors for choices)")
    trace_parser.add_argument(
        "--out", default=None, help="output path (default: trace-<name>.json)"
    )
    chaos_parser = sub.add_parser(
        "chaos", help="run the deterministic fault-injection sweep"
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=2025,
        help="fault-plan seed (same seed => identical schedule and numbers)",
    )
    chaos_parser.add_argument(
        "--requests", type=int, default=40, help="requests per run"
    )
    chaos_parser.add_argument(
        "--quick", action="store_true",
        help="small sweep grid and request count (CI smoke)",
    )
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result as sorted JSON (byte-stable per seed)",
    )
    conc_parser = sub.add_parser(
        "concurrency", help="run the TCS-scheduler throughput benchmark"
    )
    conc_parser.add_argument(
        "--requests", type=int, default=24, help="batch size per throughput run"
    )
    conc_parser.add_argument(
        "--paced-ms", type=float, default=50.0,
        help="per-request service-time floor in ms (0 disables pacing)",
    )
    conc_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict as JSON",
    )
    batch_parser = sub.add_parser(
        "batching", help="run the live micro-batching throughput benchmark"
    )
    batch_parser.add_argument(
        "--requests", type=int, default=24, help="burst size per throughput run"
    )
    batch_parser.add_argument(
        "--paced-ms", type=float, default=80.0,
        help="per-request busy service-time floor in ms",
    )
    batch_parser.add_argument(
        "--max-batch", type=int, default=4,
        help="batch bound for the batched run (clamped to the TCS count)",
    )
    batch_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict as JSON",
    )
    gw_parser = sub.add_parser(
        "gateway", help="run the routed-throughput gateway benchmark"
    )
    gw_parser.add_argument(
        "--requests", type=int, default=24, help="requests per fleet width"
    )
    gw_parser.add_argument(
        "--paced-ms", type=float, default=150.0,
        help="per-request service-time floor in ms (0 disables pacing)",
    )
    gw_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict as JSON",
    )
    serve_parser = sub.add_parser(
        "serve", help="boot the HTTP service tier over a live gateway"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks an ephemeral one)",
    )
    serve_parser.add_argument(
        "--tcs", type=int, default=4, help="TCS count per endpoint"
    )
    serve_parser.add_argument(
        "--endpoints", type=int, default=1, help="endpoints in the pool"
    )
    serve_parser.add_argument(
        "--paced-ms", type=float, default=0.0,
        help="per-request service-time floor in ms (0 disables pacing)",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="admission bound (default: fleet TCS capacity)",
    )
    serve_parser.add_argument(
        "--keep-alive", type=float, default=None, metavar="SECONDS",
        help="arm the warm pool: retire endpoints idle this long "
             "(default: warm pool off)",
    )
    serve_parser.add_argument(
        "--min-warm", type=int, default=1,
        help="endpoints the janitor always keeps alive (0: scale to zero)",
    )
    serve_parser.add_argument(
        "--warm-strategy", default="lcs", choices=("lcs", "mru", "affinity"),
        help="warm-endpoint reuse policy",
    )
    serve_parser.add_argument(
        "--prewarm", action="store_true",
        help="launch endpoints ahead of predicted demand (EWMA rates)",
    )
    service_parser = sub.add_parser(
        "service", help="run the service-tier saturation benchmark"
    )
    service_parser.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds per load phase",
    )
    service_parser.add_argument(
        "--paced-ms", type=float, default=200.0,
        help="per-request service-time floor in ms",
    )
    service_parser.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop clients in the saturated phase",
    )
    service_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict (the BENCH_service.json artifact)",
    )
    warmpool_parser = sub.add_parser(
        "warmpool", help="run the warm-pool cold-start policy sweep"
    )
    warmpool_parser.add_argument(
        "--duration", type=float, default=240.0,
        help="seconds of workload per policy run",
    )
    warmpool_parser.add_argument(
        "--keep-alive", type=float, default=30.0,
        help="keep-alive for the managed policies (seconds)",
    )
    warmpool_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict (the BENCH_warmpool.json artifact)",
    )
    hotpath_parser = sub.add_parser(
        "hotpath", help="run the hot-path per-request overhead benchmark"
    )
    hotpath_parser.add_argument(
        "--requests", type=int, default=60,
        help="timed requests per lane (two users alternating)",
    )
    hotpath_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict (the BENCH_hotpath.json artifact)",
    )
    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names, args.json, args.seed)
    if args.command == "trace":
        return _cmd_trace(args.name, args.out)
    if args.command == "chaos":
        return _cmd_chaos(args.seed, args.requests, args.quick, args.json)
    if args.command == "concurrency":
        return _cmd_concurrency(args.requests, args.paced_ms, args.json)
    if args.command == "batching":
        return _cmd_batching(
            args.requests, args.paced_ms, args.max_batch, args.json
        )
    if args.command == "gateway":
        return _cmd_gateway(args.requests, args.paced_ms, args.json)
    if args.command == "serve":
        return _cmd_serve(
            args.host, args.port, args.tcs, args.endpoints,
            args.paced_ms, args.max_inflight,
            args.keep_alive, args.min_warm, args.warm_strategy, args.prewarm,
        )
    if args.command == "service":
        return _cmd_service(
            args.duration, args.paced_ms, args.clients, args.json
        )
    if args.command == "warmpool":
        return _cmd_warmpool(args.duration, args.keep_alive, args.json)
    if args.command == "hotpath":
        return _cmd_hotpath(args.requests, args.json)
    if args.command == "report":
        return _cmd_report(args.path)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
