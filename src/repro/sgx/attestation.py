"""Remote attestation: reports, quotes, quoting enclave, verification.

The chain mirrors Intel's architecture:

- an enclave produces a local **report** carrying its MRENCLAVE, security
  version, attributes, and 64 bytes of caller-chosen ``report_data``
  (SeSeMI binds the hash of the RA-TLS handshake key here);
- the platform's **quoting enclave** turns a report into a **quote** by
  signing it with an attestation key provisioned by the manufacturer
  (EPID on SGX1, ECDSA/DCAP on SGX2 -- both are Schnorr signatures in our
  model, differing in the verification *path* and cost);
- a relying party verifies the quote against the manufacturer root and
  checks the enclave identity against its expected value.

Verification for EPID-style quotes models the round trip to the Intel
Attestation Service; DCAP verification is local against cached collateral.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.crypto.signature import Signature, SigningKey, VerifyKey
from repro.errors import AttestationError
from repro.sgx.measurement import EnclaveMeasurement

REPORT_DATA_SIZE = 64


class AttestationKind(str, Enum):
    """Which attestation flavour a platform supports."""

    EPID = "epid"  # SGX1: quote verified via the Intel Attestation Service
    DCAP = "dcap"  # SGX2: ECDSA quote verified locally against collateral


@dataclass(frozen=True)
class Report:
    """A local attestation report (EREPORT output)."""

    mrenclave: EnclaveMeasurement
    isv_svn: int
    debug: bool
    report_data: bytes
    platform_id: str

    def __post_init__(self) -> None:
        if len(self.report_data) != REPORT_DATA_SIZE:
            raise AttestationError(
                f"report_data must be exactly {REPORT_DATA_SIZE} bytes"
            )

    def encode(self) -> bytes:
        """Canonical byte encoding covered by the quote signature."""
        platform = self.platform_id.encode()
        return b"".join(
            [
                b"SGXREPORT",
                self.mrenclave.to_bytes(),
                struct.pack(">HB", self.isv_svn, int(self.debug)),
                self.report_data,
                struct.pack(">H", len(platform)),
                platform,
            ]
        )


@dataclass(frozen=True)
class Quote:
    """A signed attestation quote."""

    report: Report
    kind: AttestationKind
    signature: Signature

    def signed_payload(self) -> bytes:
        """The bytes the attestation key signed (kind + report encoding)."""
        return self.kind.value.encode() + b"\x00" + self.report.encode()


class QuotingEnclave:
    """The per-platform quoting enclave holding the attestation key."""

    def __init__(self, kind: AttestationKind, attestation_key: SigningKey) -> None:
        self.kind = kind
        self._key = attestation_key
        self.quotes_generated = 0

    def quote(self, report: Report) -> Quote:
        """Sign ``report`` into a quote."""
        self.quotes_generated += 1
        payload = self.kind.value.encode() + b"\x00" + report.encode()
        return Quote(report=report, kind=self.kind, signature=self._key.sign(payload))


@dataclass
class QuotePolicy:
    """What a relying party requires of a quote."""

    expected_mrenclave: Optional[EnclaveMeasurement] = None
    min_isv_svn: int = 0
    allow_debug: bool = False


class AttestationService:
    """Verifies quotes against the manufacturer's root of trust.

    A single service instance plays the role of both the Intel
    Attestation Service (EPID path) and the cached DCAP collateral
    (ECDSA path); enclave platforms register their attestation keys with
    it at provisioning time, exactly as Intel provisions real hardware.
    """

    def __init__(self) -> None:
        self._roots: dict[str, VerifyKey] = {}
        self.verifications = 0

    def provision_platform(self, platform_id: str, key: SigningKey) -> None:
        """Record the attestation public key for a platform."""
        self._roots[platform_id] = key.verify_key

    def verify(self, quote: Quote, policy: QuotePolicy | None = None) -> Report:
        """Verify a quote's signature and policy; return the inner report.

        Raises :class:`AttestationError` on any failure: unknown platform,
        bad signature, stale security version, debug enclave, or identity
        mismatch.
        """
        self.verifications += 1
        root = self._roots.get(quote.report.platform_id)
        if root is None:
            raise AttestationError(
                f"unknown platform {quote.report.platform_id!r}: not provisioned"
            )
        try:
            root.verify(quote.signed_payload(), quote.signature)
        except Exception as exc:
            raise AttestationError(f"quote signature invalid: {exc}") from exc
        policy = policy or QuotePolicy()
        report = quote.report
        if report.debug and not policy.allow_debug:
            raise AttestationError("debug enclaves are not acceptable")
        if report.isv_svn < policy.min_isv_svn:
            raise AttestationError(
                f"security version {report.isv_svn} below minimum {policy.min_isv_svn}"
            )
        if (
            policy.expected_mrenclave is not None
            and report.mrenclave != policy.expected_mrenclave
        ):
            raise AttestationError(
                "enclave identity mismatch: "
                f"got {report.mrenclave.value[:16]}, "
                f"expected {policy.expected_mrenclave.value[:16]}"
            )
        return report
