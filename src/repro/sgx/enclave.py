"""Functional enclave model: lifecycle, ECALL/OCALL dispatch, TCS slots.

An :class:`Enclave` hosts an :class:`EnclaveCode` program.  The contract
follows SGX:

- only methods explicitly exported with the :func:`ecall` decorator can be
  invoked from outside; everything else is unreachable (the "minimal
  attack surface" argument of the paper's Section IV-D);
- each concurrent ECALL occupies a Thread Control Structure (TCS); an
  enclave built with ``tcs_count=n`` admits at most *n* simultaneous
  ECALLs and raises :class:`TcsExhausted` beyond that;
- enclave code reaches back into the untrusted world only through
  registered OCALL handlers;
- the enclave identity (MRENCLAVE) covers the code and build config, and
  is reported via :meth:`Enclave.get_report` for attestation.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import EnclaveError, TcsExhausted
from repro.sgx.attestation import REPORT_DATA_SIZE, Report
from repro.sgx.measurement import EnclaveMeasurement, code_identity_of, measure

_enclave_ids = itertools.count(1)


def ecall(fn: Callable) -> Callable:
    """Mark a method of an :class:`EnclaveCode` subclass as an ECALL export."""
    fn.__is_ecall__ = True  # type: ignore[attr-defined]
    return fn


@dataclass(frozen=True)
class EnclaveBuildConfig:
    """Build-time enclave configuration (covered by MRENCLAVE).

    Mirrors the SGX enclave configuration file: number of TCSs, committed
    memory, security version, and debug attribute.  The paper configures
    per-model memory sizes (Appendix D) and TCS counts 1-8 here.
    """

    memory_bytes: int
    tcs_count: int = 1
    isv_svn: int = 1
    debug: bool = False

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise EnclaveError("enclave memory must be positive")
        if self.tcs_count < 1:
            raise EnclaveError("an enclave needs at least one TCS")

    def as_mapping(self) -> dict:
        """JSON-friendly form folded into the enclave measurement."""
        return {
            "memory_bytes": self.memory_bytes,
            "tcs_count": self.tcs_count,
            "isv_svn": self.isv_svn,
            "debug": self.debug,
        }


class EnclaveCode:
    """Base class for enclave programs.

    Subclasses export ECALLs with the :func:`ecall` decorator and may
    declare extra build-time settings in :attr:`SETTINGS`; these settings
    are folded into the measurement, which is how SeSeMI's execution
    restrictions (sequential isolation, key-cache off) become part of the
    enclave identity.
    """

    #: Code-level build settings folded into MRENCLAVE.
    SETTINGS: dict = {}

    def __init__(self) -> None:
        self._enclave: Optional["Enclave"] = None

    @property
    def enclave(self) -> "Enclave":
        if self._enclave is None:
            raise EnclaveError("enclave code is not loaded into an enclave")
        return self._enclave

    def settings(self) -> dict:
        """Build settings for this instance (override to parameterise)."""
        return dict(self.SETTINGS)

    def on_load(self, enclave: "Enclave") -> None:
        """Hook invoked once when the enclave finishes initialisation."""

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an untrusted OCALL handler registered on the enclave."""
        return self.enclave.dispatch_ocall(name, *args, **kwargs)


class _TcsPool:
    """Counting pool of TCS slots; non-blocking acquire, thread-safe."""

    def __init__(self, count: int) -> None:
        self._lock = threading.Lock()
        self._free = count
        self.capacity = count

    def acquire(self) -> None:
        with self._lock:
            if self._free == 0:
                raise TcsExhausted(
                    f"all {self.capacity} TCS slots are busy; "
                    "increase tcs_count or serialise requests"
                )
            self._free -= 1

    def release(self) -> None:
        with self._lock:
            if self._free >= self.capacity:
                raise EnclaveError("TCS released more times than acquired")
            self._free += 1

    @property
    def in_use(self) -> int:
        with self._lock:
            return self.capacity - self._free


class Enclave:
    """A loaded enclave instance; create through :class:`SgxPlatform`."""

    def __init__(
        self,
        code: EnclaveCode,
        config: EnclaveBuildConfig,
        platform_id: str,
        on_destroy: Callable[["Enclave"], None] | None = None,
        on_expand: Callable[["Enclave", int], None] | None = None,
    ) -> None:
        self.enclave_id = f"enclave-{next(_enclave_ids)}"
        self.code = code
        self.config = config
        self.platform_id = platform_id
        self._on_destroy = on_destroy
        self._on_expand = on_expand
        self._dynamic_bytes = 0
        self._destroyed = False
        self._tcs = _TcsPool(config.tcs_count)
        self._ocall_handlers: Dict[str, Callable] = {}
        self._ecalls = {
            name
            for name in dir(type(code))
            if getattr(getattr(type(code), name), "__is_ecall__", False)
        }
        identity = code_identity_of(code)
        build_view = dict(config.as_mapping())
        build_view["settings"] = code.settings()
        self.measurement: EnclaveMeasurement = measure(identity, build_view)
        code._enclave = self
        code.on_load(self)

    # -- lifecycle -------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._destroyed

    def destroy(self) -> None:
        """Tear the enclave down; further ECALLs fail."""
        if self._destroyed:
            return
        self._destroyed = True
        if self._on_destroy is not None:
            self._on_destroy(self)

    # -- dynamic memory (SGX2 EDMM) ----------------------------------------------

    @property
    def dynamic_bytes(self) -> int:
        """Memory added after initialisation (EAUG/EACCEPT pages)."""
        return self._dynamic_bytes

    def expand_memory(self, nbytes: int) -> None:
        """Grow the enclave at runtime (SGX2's EDMM capability).

        Dynamically added pages are *not* measured -- MRENCLAVE covers
        only the build-time layout -- so the identity is unchanged, just
        as on real SGX2 hardware.  The platform accounts the pages
        against its EPC (set via ``on_expand`` at creation).
        """
        if self._destroyed:
            raise EnclaveError(f"{self.enclave_id} is destroyed")
        if nbytes <= 0:
            raise EnclaveError("expansion must be positive")
        if self._on_expand is None:
            raise EnclaveError(
                "this platform does not support dynamic enclave memory (EDMM)"
            )
        self._on_expand(self, nbytes)
        self._dynamic_bytes += nbytes

    # -- ECALL / OCALL dispatch --------------------------------------------------

    @property
    def exported_ecalls(self) -> frozenset:
        """Names of the ECALLs the untrusted world may invoke."""
        return frozenset(self._ecalls)

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke the exported ECALL ``name`` on one TCS.

        Anything not exported -- private helpers, plain methods, dunder
        attributes -- is rejected, no matter what the caller guesses.
        """
        if self._destroyed:
            raise EnclaveError(f"{self.enclave_id} is destroyed")
        if name not in self._ecalls:
            raise EnclaveError(f"{name!r} is not an exported ECALL")
        self._tcs.acquire()
        try:
            return getattr(self.code, name)(*args, **kwargs)
        finally:
            self._tcs.release()

    def register_ocall(self, name: str, handler: Callable) -> None:
        """Register the untrusted handler for OCALL ``name``."""
        self._ocall_handlers[name] = handler

    def dispatch_ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke the registered untrusted handler for an OCALL."""
        handler = self._ocall_handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no OCALL handler registered for {name!r}")
        return handler(*args, **kwargs)

    @property
    def tcs_in_use(self) -> int:
        return self._tcs.in_use

    # -- attestation ---------------------------------------------------------------

    def get_report(self, report_data: bytes = b"") -> Report:
        """Produce a local report binding ``report_data`` to this identity."""
        if self._destroyed:
            raise EnclaveError(f"{self.enclave_id} is destroyed")
        if len(report_data) > REPORT_DATA_SIZE:
            raise EnclaveError(
                f"report_data limited to {REPORT_DATA_SIZE} bytes"
            )
        padded = report_data.ljust(REPORT_DATA_SIZE, b"\x00")
        return Report(
            mrenclave=self.measurement,
            isv_svn=self.config.isv_svn,
            debug=self.config.debug,
            report_data=padded,
            platform_id=self.platform_id,
        )
