"""RA-TLS: attested secure channels (Knauth et al., as used by SeSeMI).

The handshake is an ephemeral Diffie-Hellman exchange in which either or
both sides present an attestation quote whose ``report_data`` binds the
hash of their handshake public key.  Verifying the quote therefore proves
that the *channel itself* terminates inside the attested enclave -- there
is no way to splice a man-in-the-middle between the attested identity and
the session keys.

Three configurations appear in SeSeMI:

- owner/user -> KeyService: one-way attestation (the client checks the
  KeyService enclave identity ``E_K``);
- SeMIRT -> KeyService: mutual attestation (KeyService checks the SeMIRT
  identity ``E_S`` before provisioning keys, and SeMIRT checks ``E_K``);
- user -> FnPacker: no attestation, payloads are independently encrypted.

The handshake is split into message-level halves
(:func:`respond_handshake` / :func:`complete_handshake`) so the server
side can run *inside* an enclave ECALL, with quotes fetched through an
OCALL -- exactly the structure of the paper's implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.crypto.dh import DHKeyPair, DHPublicKey, derive_session_key
from repro.crypto.gcm import AESGCM
from repro.crypto.hashes import sha256
from repro.crypto.signature import Signature
from repro.errors import AttestationError, CryptoError
from repro.sgx.attestation import (
    AttestationKind,
    AttestationService,
    Quote,
    QuotePolicy,
    Report,
)
from repro.sgx.enclave import Enclave
from repro.sgx.measurement import EnclaveMeasurement

_channel_ids = itertools.count(1)

#: something that turns a report into a quote (a platform, or an OCALL)
Quoter = Callable[[Report], Quote]


def quote_to_wire(quote: Quote) -> dict:
    """Encode a quote for transport."""
    report = quote.report
    return {
        "kind": quote.kind.value,
        "mrenclave": report.mrenclave.value,
        "isv_svn": report.isv_svn,
        "debug": report.debug,
        "report_data": report.report_data,
        "platform_id": report.platform_id,
        "signature": quote.signature.to_bytes(),
    }


def quote_from_wire(data: dict) -> Quote:
    """Decode a quote from transport form."""
    try:
        report = Report(
            mrenclave=EnclaveMeasurement(data["mrenclave"]),
            isv_svn=int(data["isv_svn"]),
            debug=bool(data["debug"]),
            report_data=data["report_data"],
            platform_id=data["platform_id"],
        )
        return Quote(
            report=report,
            kind=AttestationKind(data["kind"]),
            signature=Signature.from_bytes(data["signature"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise AttestationError(f"malformed quote on the wire: {exc}") from exc


@dataclass(frozen=True)
class HandshakeOffer:
    """One side's handshake flight: DH public key plus optional quote."""

    dh_public: DHPublicKey
    quote: Optional[Quote] = None

    def transcript_bytes(self) -> bytes:
        """Canonical bytes of this flight for the key-derivation transcript."""
        quote_part = b""
        if self.quote is not None:
            quote_part = self.quote.signed_payload() + self.quote.signature.to_bytes()
        return self.dh_public.to_bytes() + quote_part

    def to_wire(self) -> dict:
        """Wire-friendly dict form of the offer."""
        payload: dict = {"dh_public": self.dh_public.to_bytes()}
        if self.quote is not None:
            payload["quote"] = quote_to_wire(self.quote)
        return payload

    @classmethod
    def from_wire(cls, data: dict) -> "HandshakeOffer":
        try:
            public = DHPublicKey(int.from_bytes(data["dh_public"], "big"))
        except (KeyError, TypeError) as exc:
            raise AttestationError(f"malformed handshake offer: {exc}") from exc
        quote = quote_from_wire(data["quote"]) if "quote" in data else None
        return cls(dh_public=public, quote=quote)


class RatlsPeer:
    """A handshake participant; attested when backed by an enclave."""

    def __init__(
        self,
        name: str,
        enclave: Optional[Enclave] = None,
        quoter: Optional[Quoter] = None,
    ) -> None:
        if (enclave is None) != (quoter is None):
            raise ValueError("attested peers need both an enclave and a quoter")
        self.name = name
        self._enclave = enclave
        self._quoter = quoter
        self._keypair: Optional[DHKeyPair] = None

    @property
    def is_attested(self) -> bool:
        return self._enclave is not None

    def offer(self) -> HandshakeOffer:
        """Generate the handshake flight (fresh DH key, quote if attested)."""
        self._keypair = DHKeyPair.generate()
        quote = None
        if self._enclave is not None and self._quoter is not None:
            binding = sha256(self._keypair.public.to_bytes())
            report = self._enclave.get_report(binding)
            quote = self._quoter(report)
        return HandshakeOffer(dh_public=self._keypair.public, quote=quote)

    def shared_secret(self, peer_offer: HandshakeOffer) -> bytes:
        """Raw DH secret against the peer's offer (offer() must come first)."""
        if self._keypair is None:
            raise CryptoError("offer() must be called before deriving secrets")
        return self._keypair.shared_secret(peer_offer.dh_public)


def check_offer(
    offer: HandshakeOffer,
    policy: Optional[QuotePolicy],
    verifier: Optional[AttestationService],
    peer_label: str,
) -> Optional[Report]:
    """Verify the peer's quote against ``policy``; returns the report.

    With ``policy=None`` the peer is accepted unattested and ``None`` is
    returned.  On success the report's ``report_data`` is checked to bind
    the peer's handshake key, defeating quote-splicing MITM attacks.
    """
    if policy is None:
        return None
    if offer.quote is None:
        raise AttestationError(f"{peer_label} presented no quote but one is required")
    if verifier is None:
        raise AttestationError("an attestation service is required to verify quotes")
    report = verifier.verify(offer.quote, policy)
    expected_binding = sha256(offer.dh_public.to_bytes()).ljust(64, b"\x00")
    if report.report_data != expected_binding:
        raise AttestationError(
            f"{peer_label} quote does not bind the handshake key "
            "(possible man-in-the-middle)"
        )
    return report


class SecureChannel:
    """One end of an established RA-TLS channel.

    Messages are AES-GCM sealed with per-direction keys and strictly
    increasing counters used as nonces, so replayed, reordered, or
    cross-direction-reflected ciphertexts fail authentication.
    """

    def __init__(self, send_key: bytes, recv_key: bytes, label: str) -> None:
        self._send = AESGCM(send_key)
        self._recv = AESGCM(recv_key)
        self._send_seq = 0
        self._recv_seq = 0
        self.label = label

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return seq.to_bytes(12, "big")

    def send(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt ``plaintext`` into a wire message."""
        wire = self._send.encrypt(self._nonce(self._send_seq), plaintext, aad)
        self._send_seq += 1
        return wire

    def recv(self, wire: bytes, aad: bytes = b"") -> bytes:
        """Authenticate and decrypt the next in-order wire message."""
        plaintext = self._recv.decrypt(self._nonce(self._recv_seq), wire, aad)
        self._recv_seq += 1
        return plaintext


def _derive_pair(
    secret: bytes, transcript: bytes, label: str
) -> Tuple[bytes, bytes]:
    """(c2s, s2c) session keys for one side."""
    return (
        derive_session_key(secret, transcript + b"c2s"),
        derive_session_key(secret, transcript + b"s2c"),
    )


def respond_handshake(
    server: RatlsPeer,
    client_offer: HandshakeOffer,
    verifier: Optional[AttestationService] = None,
    server_requires: Optional[QuotePolicy] = None,
) -> Tuple[HandshakeOffer, SecureChannel, Optional[Report]]:
    """Server half: verify the client, reply, derive the server channel end.

    Returns ``(server_offer, server_channel, client_report)`` where
    ``client_report`` is the verified client report (``None`` when the
    client is unattested).  This is what runs *inside* KeyService.
    """
    client_report = check_offer(
        client_offer, server_requires, verifier, f"client of {server.name!r}"
    )
    server_offer = server.offer()
    transcript = client_offer.transcript_bytes() + server_offer.transcript_bytes()
    secret = server.shared_secret(client_offer)
    c2s, s2c = _derive_pair(secret, transcript, server.name)
    channel = SecureChannel(
        send_key=s2c,
        recv_key=c2s,
        label=f"ratls-{next(_channel_ids)}:{server.name}",
    )
    return server_offer, channel, client_report


def complete_handshake(
    client: RatlsPeer,
    client_offer: HandshakeOffer,
    server_offer: HandshakeOffer,
    verifier: Optional[AttestationService] = None,
    client_requires: Optional[QuotePolicy] = None,
) -> SecureChannel:
    """Client half: verify the server's reply and derive the client end."""
    check_offer(
        server_offer, client_requires, verifier, f"server of {client.name!r}"
    )
    transcript = client_offer.transcript_bytes() + server_offer.transcript_bytes()
    secret = client.shared_secret(server_offer)
    c2s, s2c = _derive_pair(secret, transcript, client.name)
    return SecureChannel(
        send_key=c2s,
        recv_key=s2c,
        label=f"ratls-{next(_channel_ids)}:{client.name}",
    )


def perform_handshake(
    client: RatlsPeer,
    server: RatlsPeer,
    verifier: Optional[AttestationService] = None,
    client_requires: Optional[QuotePolicy] = None,
    server_requires: Optional[QuotePolicy] = None,
) -> Tuple[SecureChannel, SecureChannel]:
    """Run both halves in-process; returns ``(client_end, server_end)``."""
    client_offer = client.offer()
    server_offer, server_end, _ = respond_handshake(
        server, client_offer, verifier, server_requires
    )
    client_end = complete_handshake(
        client, client_offer, server_offer, verifier, client_requires
    )
    return client_end, server_end
