"""Enclave Page Cache (EPC) accounting and paging cost model.

SGX reserves a fixed region of physical memory for enclave pages: 128 MB
on the paper's SGX1 machines, configurable up to 64 GB on its SGX2
machines.  When the total working set of live enclaves exceeds the EPC,
the kernel driver pages enclave memory in and out with an expensive
encrypt/evict cycle, which is the effect behind Figures 11b, 12c/d.

The manager tracks committed bytes per enclave, allows over-commit (as
the hardware does, with paging), and exposes a *slowdown factor* used by
the performance model: 1.0 while everything fits, growing with the
over-commit ratio once it does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import EpcError

PAGE_SIZE = 4096

MB = 1024 * 1024
GB = 1024 * MB


def _round_to_pages(nbytes: int) -> int:
    return ((nbytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE


@dataclass
class EpcStats:
    """Counters exposed for experiments and assertions."""

    peak_committed: int = 0
    allocations: int = 0
    frees: int = 0


class EpcManager:
    """Tracks enclave page commitments against an EPC capacity.

    Parameters
    ----------
    capacity_bytes:
        Size of the EPC (e.g. ``128 * MB`` for SGX1).
    paging_slope:
        How fast the slowdown grows per unit of over-commit ratio.  The
        default is calibrated so a 2x over-commit roughly quadruples
        access latency, matching the steep knees in Figure 11b.
    """

    def __init__(self, capacity_bytes: int, paging_slope: float = 3.0) -> None:
        if capacity_bytes <= 0:
            raise EpcError("EPC capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.paging_slope = paging_slope
        self._committed: Dict[str, int] = {}
        self.stats = EpcStats()

    # -- accounting ----------------------------------------------------------

    @property
    def committed_bytes(self) -> int:
        """Total bytes currently committed across all enclaves."""
        return sum(self._committed.values())

    def committed_for(self, enclave_id: str) -> int:
        """Bytes currently committed by one enclave."""
        return self._committed.get(enclave_id, 0)

    def allocate(self, enclave_id: str, nbytes: int) -> int:
        """Commit ``nbytes`` (page-rounded) for ``enclave_id``.

        Over-commit is allowed -- the hardware pages -- but a single
        enclave may not exceed the EPC capacity on SGX1-like platforms
        where enclave size is bounded by the driver; we enforce only
        non-negative sizes here and leave policy to the platform.
        """
        if nbytes < 0:
            raise EpcError("cannot allocate a negative number of bytes")
        rounded = _round_to_pages(nbytes)
        self._committed[enclave_id] = self._committed.get(enclave_id, 0) + rounded
        self.stats.allocations += 1
        self.stats.peak_committed = max(self.stats.peak_committed, self.committed_bytes)
        return rounded

    def free(self, enclave_id: str, nbytes: int | None = None) -> None:
        """Release ``nbytes`` (or everything) committed by ``enclave_id``."""
        held = self._committed.get(enclave_id, 0)
        if nbytes is None:
            released = held
        else:
            released = _round_to_pages(nbytes)
            if released > held:
                raise EpcError(
                    f"enclave {enclave_id} frees {released} bytes but holds {held}"
                )
        remaining = held - released
        if remaining:
            self._committed[enclave_id] = remaining
        else:
            self._committed.pop(enclave_id, None)
        self.stats.frees += 1

    # -- performance model -----------------------------------------------------

    @property
    def pressure(self) -> float:
        """Committed-to-capacity ratio (>1 means the EPC is over-committed)."""
        return self.committed_bytes / self.capacity_bytes

    def access_slowdown(self) -> float:
        """Multiplier on enclave memory-bound work under current pressure.

        1.0 while the combined working set fits in the EPC; beyond that
        the cost of the evict/reload cycle grows with the over-commit
        ratio.  This shape (flat, then a steep knee at the EPC limit)
        matches Figure 11b.
        """
        over = self.pressure - 1.0
        if over <= 0:
            return 1.0
        return 1.0 + self.paging_slope * over

    def slowdown_for_working_set(self, extra_bytes: int = 0) -> float:
        """Slowdown if ``extra_bytes`` more were committed (what-if probe)."""
        ratio = (self.committed_bytes + extra_bytes) / self.capacity_bytes
        over = ratio - 1.0
        if over <= 0:
            return 1.0
        return 1.0 + self.paging_slope * over
