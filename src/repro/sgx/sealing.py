"""Sealed storage: encrypt data so only the same enclave identity can read it.

SGX derives sealing keys inside the CPU from a fused root secret and the
enclave's identity, so data sealed by one enclave can be unsealed only by
an enclave with the same MRENCLAVE on the same platform.  We model the
fused root as a per-platform secret held by :class:`SealingService` and
derive per-identity AES keys from it with HKDF, with the MRENCLAVE also
bound as associated data so ciphertexts cannot be re-targeted.
"""

from __future__ import annotations

from repro.crypto.gcm import AESGCM
from repro.crypto.hashes import hkdf
from repro.crypto.keys import random_bytes
from repro.errors import SealingError
from repro.sgx.enclave import Enclave


class SealingService:
    """Derives sealing keys from a per-platform root secret."""

    def __init__(self, root_secret: bytes | None = None) -> None:
        self._root = root_secret if root_secret is not None else random_bytes(32)

    def _cipher_for(self, mrenclave_hex: str) -> AESGCM:
        key = hkdf(self._root, length=16, info=b"seal:" + mrenclave_hex.encode())
        return AESGCM(key)

    def seal(self, enclave: Enclave, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` to ``enclave``'s identity."""
        identity = enclave.measurement.value
        cipher = self._cipher_for(identity)
        return cipher.seal(plaintext, aad=identity.encode())

    def unseal(self, enclave: Enclave, blob: bytes) -> bytes:
        """Unseal ``blob``; fails for any other enclave identity."""
        identity = enclave.measurement.value
        cipher = self._cipher_for(identity)
        try:
            return cipher.open(blob, aad=identity.encode())
        except Exception as exc:
            raise SealingError(
                "sealed blob does not belong to this enclave identity"
            ) from exc
