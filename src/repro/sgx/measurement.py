"""Enclave identity (MRENCLAVE) computation.

On real SGX the MRENCLAVE is a SHA-256 accumulated over every page added
to the enclave at build time, so it covers the enclave *code* and its
*build configuration* but not runtime inputs.  Our functional model
reproduces exactly that contract:

- the measurement covers the enclave code identity (the Python source of
  the enclave-code class) and the build configuration (TCS count, heap
  size, execution-restriction flags, ...);
- it does **not** cover models, keys, or requests, which are runtime data
  (Appendix B of the paper);
- any change to code or config yields a different identity, which is what
  lets KeyService enforce "keys only to enclave :math:`E_S`".
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True, order=True)
class EnclaveMeasurement:
    """An MRENCLAVE value (hex-encoded SHA-256)."""

    value: str

    def __post_init__(self) -> None:
        if len(self.value) != 64 or any(c not in "0123456789abcdef" for c in self.value):
            raise ValueError("measurement must be 64 lowercase hex chars")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value[:16] + "..."

    def to_bytes(self) -> bytes:
        """The raw 32-byte digest."""
        return bytes.fromhex(self.value)


def _canonical_config(config: Mapping[str, Any]) -> bytes:
    """Deterministic encoding of a build configuration."""
    try:
        return json.dumps(config, sort_keys=True, separators=(",", ":")).encode()
    except TypeError as exc:
        raise ValueError(f"enclave config must be JSON-serialisable: {exc}") from exc


def code_identity_of(obj: Any) -> bytes:
    """Stable identity of enclave code: hash of its class source.

    Editing the enclave code (even a single line) changes the identity,
    mirroring how re-building an enclave changes MRENCLAVE.  If source is
    unavailable (e.g. classes defined in a REPL) the qualified name is
    used, which still distinguishes different enclave programs.
    """
    cls = obj if inspect.isclass(obj) else type(obj)
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):
        source = f"{cls.__module__}.{cls.__qualname__}"
    return hashlib.sha256(source.encode()).digest()


def measure(code_identity: bytes, config: Mapping[str, Any]) -> EnclaveMeasurement:
    """Compute the MRENCLAVE of enclave code + build configuration."""
    h = hashlib.sha256()
    h.update(b"MRENCLAVE\x00")
    h.update(code_identity)
    h.update(_canonical_config(config))
    return EnclaveMeasurement(h.hexdigest())
