"""Functional model of Intel SGX.

The paper relies on four SGX capabilities; each maps to a module here:

- enclaves with a minimal ECALL/OCALL surface and TCS-bounded concurrency
  (:mod:`repro.sgx.enclave`);
- enclave identity via MRENCLAVE (:mod:`repro.sgx.measurement`);
- remote attestation with EPID (SGX1) and DCAP (SGX2) flavours
  (:mod:`repro.sgx.attestation`) and RA-TLS channels (:mod:`repro.sgx.ratls`);
- the EPC memory limit and its paging cost (:mod:`repro.sgx.epc`), plus
  per-generation hardware timing profiles (:mod:`repro.sgx.platform`).
"""

from repro.sgx.attestation import (
    AttestationKind,
    AttestationService,
    Quote,
    QuotePolicy,
    QuotingEnclave,
    Report,
)
from repro.sgx.enclave import Enclave, EnclaveBuildConfig, EnclaveCode, ecall
from repro.sgx.epc import GB, MB, EpcManager
from repro.sgx.measurement import EnclaveMeasurement, code_identity_of, measure
from repro.sgx.platform import SGX1, SGX2, HardwareProfile, SgxPlatform, profile_with_epc
from repro.sgx.ratls import (
    HandshakeOffer,
    RatlsPeer,
    SecureChannel,
    complete_handshake,
    perform_handshake,
    respond_handshake,
)
from repro.sgx.sealing import SealingService

__all__ = [
    "GB",
    "MB",
    "SGX1",
    "SGX2",
    "AttestationKind",
    "AttestationService",
    "Enclave",
    "EnclaveBuildConfig",
    "EnclaveCode",
    "EnclaveMeasurement",
    "EpcManager",
    "HandshakeOffer",
    "HardwareProfile",
    "Quote",
    "QuotePolicy",
    "QuotingEnclave",
    "RatlsPeer",
    "Report",
    "SealingService",
    "SecureChannel",
    "SgxPlatform",
    "code_identity_of",
    "complete_handshake",
    "ecall",
    "measure",
    "perform_handshake",
    "profile_with_epc",
    "respond_handshake",
]
