"""SGX platforms: hardware profiles, enclave launch, timing model.

A :class:`SgxPlatform` is one SGX-capable machine.  It owns an EPC
manager and a quoting enclave, launches enclaves (the aesmd role), and
exposes the *timing model* for the expensive hardware operations the
paper measures in its appendix:

- enclave initialisation time grows with the enclave's committed memory
  and with the number of enclaves being launched concurrently (Fig. 15);
- quote generation contends on the single quoting enclave (Fig. 16);
- EPID attestation (SGX1) pays an Internet round trip to the Intel
  Attestation Service, DCAP (SGX2) verifies locally.

Profiles :data:`SGX1` and :data:`SGX2` are calibrated against the
published numbers (e.g. 16 concurrent 256 MB enclaves at ~4.06 s each).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.crypto.signature import SigningKey
from repro.errors import EnclaveError
from repro.sgx.attestation import (
    AttestationKind,
    AttestationService,
    Quote,
    QuotingEnclave,
    Report,
)
from repro.sgx.enclave import Enclave, EnclaveBuildConfig, EnclaveCode
from repro.sgx.epc import GB, MB, EpcManager
from repro.sgx.sealing import SealingService

_platform_ids = itertools.count(1)


@dataclass(frozen=True)
class HardwareProfile:
    """Cost/capacity parameters of one SGX hardware generation."""

    name: str
    attestation: AttestationKind
    epc_bytes: int
    #: fixed enclave-creation cost (ECREATE, EINIT) in seconds
    init_base_s: float
    #: per-MB cost of EADD/EEXTEND over the committed memory, seconds/MB
    init_per_mb_s: float
    #: slowdown per additional enclave launching concurrently
    init_concurrency_slope: float
    #: quote generation latency with an idle quoting enclave, seconds
    quote_base_s: float
    #: slowdown per additional concurrent quote request
    quote_concurrency_slope: float
    #: verification latency of one quote (IAS round trip for EPID), seconds
    verify_s: float

    # -- timing model -----------------------------------------------------------

    def enclave_init_time(self, memory_bytes: int, concurrent: int = 1) -> float:
        """Seconds to initialise one enclave of ``memory_bytes``.

        ``concurrent`` counts enclaves being launched at the same time on
        this machine (including this one); launches contend on the EPC
        add/extend path, so the per-enclave latency grows with it.
        On EPC-limited hardware the growth also reflects paging when the
        combined launch set exceeds the EPC.
        """
        concurrent = max(1, concurrent)
        base = self.init_base_s + self.init_per_mb_s * (memory_bytes / MB)
        contention = 1.0 + self.init_concurrency_slope * (concurrent - 1)
        paging = 1.0
        total_launch_bytes = memory_bytes * concurrent
        if total_launch_bytes > self.epc_bytes:
            paging = 1.0 + 1.5 * (total_launch_bytes / self.epc_bytes - 1.0)
        return base * contention * paging

    def quote_time(self, concurrent: int = 1) -> float:
        """Seconds to generate one quote with ``concurrent`` requesters."""
        concurrent = max(1, concurrent)
        return self.quote_base_s * (
            1.0 + self.quote_concurrency_slope * (concurrent - 1)
        )

    def attestation_round_time(self, concurrent: int = 1) -> float:
        """Quote generation + verification (the paper's 'RA' cost)."""
        return self.quote_time(concurrent) + self.verify_s


#: SGX1 (Xeon W-1290P in the paper): 128 MB EPC, EPID attestation via IAS.
SGX1 = HardwareProfile(
    name="sgx1",
    attestation=AttestationKind.EPID,
    epc_bytes=128 * MB,
    init_base_s=0.06,
    init_per_mb_s=0.0045,
    init_concurrency_slope=0.45,
    quote_base_s=0.32,
    quote_concurrency_slope=0.6,
    verify_s=0.35,
)

#: SGX2 (Xeon Gold 5317 in the paper): 64 GB EPC, DCAP/ECDSA attestation.
#: init calibrated so 16 concurrent 256 MB launches average ~4.06 s each
#: (Appendix C) while a cold TVM-MBNET invocation lands at ~21x its hot
#: latency (Section VI-A).
SGX2 = HardwareProfile(
    name="sgx2",
    attestation=AttestationKind.DCAP,
    epc_bytes=64 * GB,
    init_base_s=0.05,
    init_per_mb_s=0.0033,
    init_concurrency_slope=0.236,
    quote_base_s=0.08,
    quote_concurrency_slope=0.75,
    verify_s=0.05,
)


def profile_with_epc(profile: HardwareProfile, epc_bytes: int) -> HardwareProfile:
    """A copy of ``profile`` with a different configured EPC size."""
    return replace(profile, epc_bytes=epc_bytes)


class SgxPlatform:
    """One SGX machine: EPC, quoting enclave, live-enclave registry."""

    def __init__(
        self,
        profile: HardwareProfile = SGX2,
        attestation_service: Optional[AttestationService] = None,
        platform_id: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.platform_id = platform_id or f"{profile.name}-node-{next(_platform_ids)}"
        self.epc = EpcManager(profile.epc_bytes)
        attestation_key = SigningKey.generate()
        #: the platform's sealing-key derivation (the fused CPU root):
        #: enclaves on this machine seal state that only the same
        #: enclave identity on the same machine can recover
        self.sealing = SealingService()
        self._quoting_enclave = QuotingEnclave(profile.attestation, attestation_key)
        if attestation_service is not None:
            attestation_service.provision_platform(self.platform_id, attestation_key)
        self._enclaves: Dict[str, Enclave] = {}

    # -- enclave lifecycle -------------------------------------------------------

    def create_enclave(self, code: EnclaveCode, config: EnclaveBuildConfig) -> Enclave:
        """Launch ``code`` as a new enclave, committing its memory to the EPC."""
        # Enclaves larger than the EPC are allowed (the driver pages), which
        # is exactly the regime Figures 11b and 12c/d measure on SGX1.
        # Dynamic memory growth (EDMM) is an SGX2 capability.
        supports_edmm = self.profile.name == "sgx2"
        enclave = Enclave(
            code=code,
            config=config,
            platform_id=self.platform_id,
            on_destroy=self._release,
            on_expand=self._expand if supports_edmm else None,
        )
        self.epc.allocate(enclave.enclave_id, config.memory_bytes)
        self._enclaves[enclave.enclave_id] = enclave
        return enclave

    def _release(self, enclave: Enclave) -> None:
        self.epc.free(enclave.enclave_id)
        self._enclaves.pop(enclave.enclave_id, None)

    def _expand(self, enclave: Enclave, nbytes: int) -> None:
        self.epc.allocate(enclave.enclave_id, nbytes)

    @property
    def live_enclaves(self) -> int:
        return len(self._enclaves)

    # -- attestation (aesmd role) ----------------------------------------------------

    def quote(self, report: Report) -> Quote:
        """Generate a quote for a report produced on this platform."""
        if report.platform_id != self.platform_id:
            raise EnclaveError("report was produced on a different platform")
        return self._quoting_enclave.quote(report)

    @property
    def quotes_generated(self) -> int:
        return self._quoting_enclave.quotes_generated
