"""Endpoint-fleet lifecycle policy: when to scale out under pressure.

The router decides *where* a request goes; this module decides *when
the fleet itself should change shape*.  :class:`PressureTracker` turns
a stream of per-dispatch backpressure observations (did this request
hit at least one full admission queue before landing?) into a
scale-out signal, debounced so one burst does not spawn an endpoint.

The tracker is deliberately dumb and deterministic -- a consecutive
counter, no clocks, no rates -- so gateway behaviour stays a pure
function of the request sequence (the chaos CI gate depends on that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ScaleOutPolicy:
    """When sustained queue pressure should spawn a new endpoint.

    ``threshold`` is how many *consecutive* dispatches must observe
    backpressure (a ``QueueFull`` from at least one endpoint) before
    the fleet grows; ``max_endpoints`` caps the fleet size.
    """

    threshold: int = 3
    max_endpoints: int = 8

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigError("scale-out threshold must be >= 1")
        if self.max_endpoints < 1:
            raise ConfigError("scale-out max_endpoints must be >= 1")


class PressureTracker:
    """Debounced backpressure counter driving :class:`ScaleOutPolicy`.

    Call :meth:`observe` once per dispatch with whether that dispatch
    saw at least one full queue; it returns ``True`` when the policy
    says to scale out (and resets, so each spawn needs fresh pressure).
    """

    def __init__(self, policy: ScaleOutPolicy) -> None:
        self.policy = policy
        self._consecutive = 0
        self.spawns = 0

    @property
    def consecutive(self) -> int:
        """Consecutive pressured dispatches since the last reset."""
        return self._consecutive

    def observe(self, saw_pressure: bool, fleet_size: int) -> bool:
        """Record one dispatch; ``True`` means spawn an endpoint now."""
        if not saw_pressure:
            self._consecutive = 0
            return False
        self._consecutive += 1
        if (
            self._consecutive >= self.policy.threshold
            and fleet_size < self.policy.max_endpoints
        ):
            self._consecutive = 0
            self.spawns += 1
            return True
        return False
