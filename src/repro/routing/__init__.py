"""One routing plane for both twins (FnPacker, Section IV-C).

``repro.routing`` holds every piece of routing *policy* -- the
:class:`FnPool` declaration, per-endpoint state, the FnPacker /
One-to-one / All-in-one routers, and the scale-out lifecycle -- with no
knowledge of what an endpoint actually is.  The simulated twin adapts
it onto the discrete-event ``Controller`` (``repro.core.packer_service``),
the functional twin onto live ``SemirtHost`` enclaves
(``repro.core.gateway``).

Layering rule (enforced by ``scripts/check_layering.py``): this package
imports only the stdlib and ``repro.errors``.  It must never import
``repro.core``, ``repro.serverless``, or ``repro.faults``.
"""

from repro.routing.affinity import BatchAffinity
from repro.routing.lifecycle import PressureTracker, ScaleOutPolicy
from repro.routing.policy import (
    STRATEGIES,
    AllInOneRouter,
    FnPackerRouter,
    OneToOneRouter,
    Router,
    make_router,
)
from repro.routing.pool import EndpointState, FnPool

__all__ = [
    "AllInOneRouter",
    "BatchAffinity",
    "EndpointState",
    "FnPackerRouter",
    "FnPool",
    "OneToOneRouter",
    "PressureTracker",
    "Router",
    "ScaleOutPolicy",
    "STRATEGIES",
    "make_router",
]
