"""Pool and endpoint-state data shared by every router.

An :class:`FnPool` is the owner-declared unit of routing: a set of
models that share a fleet of interchangeable endpoints (each endpoint
can load any model of the pool; SeMIRT switches models inside the
enclave).  :class:`EndpointState` is the router's view of one endpoint,
built purely from observed traffic -- routers never talk to endpoints,
they only watch dispatches, completions, failures, and health marks
flow past.

This module is twin-agnostic: the same pool/state objects drive the
simulated Controller (via ``repro.core.packer_service``) and live
``SemirtHost`` fleets (via ``repro.core.gateway``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class FnPool:
    """The owner-declared pool: models sharing a set of endpoints."""

    name: str
    models: Tuple[str, ...]
    memory_budget: int
    num_endpoints: Optional[int] = None  # default: one per model

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigError("an FnPool needs at least one model")
        if len(set(self.models)) != len(self.models):
            raise ConfigError("duplicate model ids in FnPool")

    @property
    def endpoint_count(self) -> int:
        return self.num_endpoints if self.num_endpoints is not None else len(self.models)


@dataclass
class EndpointState:
    """A router's view of one endpoint (built from observed traffic)."""

    name: str
    pending: int = 0                       # responses not yet returned
    exclusive_for: Optional[str] = None    # model this endpoint is pinned to
    current_model: Optional[str] = None    # last model dispatched here
    last_request_at: float = float("-inf")
    healthy: bool = True                   # dead invokers receive no traffic
    draining: bool = False                 # finishing in-flight work, no new requests

    @property
    def available(self) -> bool:
        """Whether the endpoint may receive new traffic at all."""
        return self.healthy and not self.draining
