"""Routing policies: FnPacker (Section IV-C) and the two baselines.

FnPacker sits in front of the serverless proxy and routes encrypted
requests to function endpoints.  The owner declares an :class:`FnPool`
(a set of models plus the per-instance memory budget); FnPacker deploys
a set of endpoints that can each serve *any* model of the pool and
schedules requests so that:

- a model with **pending responses** keeps going to the endpoint already
  serving it, which becomes *exclusive* to that model -- hot models get
  dedicated endpoints and never pay switching costs;
- a model with no pending responses goes to the first endpoint that is
  **not busy**: either it has no pending work and is not exclusive to
  another model, or its exclusivity has lapsed (a large interval passed
  since its last request).

Routing sees only model ids, never plaintext, so it is security-neutral
(Section IV-D).  The two baselines of the evaluation -- *One-to-one*
and *All-in-one* -- implement the same :class:`Router` interface.

Beyond the paper's policy, routers expose the endpoint lifecycle the
gateway and the sim service need: failure accounting (releasing the
slots of requests that died mid-flight), an ``exclude`` set for
rerouting around busy queues, and scale-out / drain / retire.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigError, RoutingError
from repro.routing.pool import EndpointState, FnPool

#: deployment strategies accepted by :func:`make_router`
STRATEGIES = ("fnpacker", "one-to-one", "all-in-one")

_NO_EXCLUDE: FrozenSet[str] = frozenset()


class Router:
    """Common interface: deployment layout + per-request routing."""

    def endpoints(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """``(endpoint_name, servable_models)`` pairs to deploy."""
        raise NotImplementedError

    def route(
        self, model_id: str, now: float, exclude: FrozenSet[str] = _NO_EXCLUDE
    ) -> str:
        """Pick the endpoint for a request to ``model_id``.

        ``exclude`` names endpoints the caller already knows to be
        unusable for this request (a full admission queue, an open
        circuit breaker); routers that track endpoint state treat them
        as busy, stateless baselines ignore the hint.
        """
        raise NotImplementedError

    def on_dispatch(self, endpoint: str, model_id: str, now: float) -> None:
        """Observe a request being forwarded."""

    def on_complete(self, endpoint: str, model_id: str, now: float) -> None:
        """Observe a response coming back."""

    def on_failure(self, endpoint: str, model_id: str, now: float) -> None:
        """Observe an in-flight request dying without a response.

        Releases the slot taken by :meth:`on_dispatch`.  Unlike
        :meth:`on_complete` this is tolerant of double accounting: if
        :meth:`mark_endpoint_down` already cleared the endpoint's
        counters the call is a no-op.
        """

    def mark_endpoint_down(self, endpoint: str) -> None:
        """Stop routing to ``endpoint`` (its invoker died)."""

    def mark_endpoint_up(self, endpoint: str) -> None:
        """Resume routing to a recovered ``endpoint``."""

    # -- endpoint lifecycle (scale-out / drain / retire) -------------------------

    def add_endpoint(self, name: Optional[str] = None) -> Tuple[str, Tuple[str, ...]]:
        """Grow the pool by one endpoint; returns its deployment pair."""
        raise RoutingError(f"{type(self).__name__} does not support scale-out")

    def begin_drain(self, endpoint: str) -> None:
        """Stop sending new requests to ``endpoint``; in-flight finishes."""
        raise RoutingError(f"{type(self).__name__} does not support draining")

    def retire_endpoint(self, endpoint: str) -> None:
        """Remove a drained endpoint from the pool entirely."""
        raise RoutingError(f"{type(self).__name__} does not support retirement")


class FnPackerRouter(Router):
    """The adaptive packing scheduler of Section IV-C.

    ``idle_interval_s`` is how long an exclusive endpoint must be quiet
    before other models may reuse it.  ``slots_per_endpoint`` is how
    many requests one endpoint serves concurrently -- the ``tcs_count``
    of its SeMIRT enclave.  With more than one slot an endpoint stays
    schedulable (for the *same* model) until its in-flight count reaches
    the slot count, so multi-TCS instances are actually kept full
    instead of serialising at the router.
    """

    def __init__(
        self,
        pool: FnPool,
        idle_interval_s: float = 10.0,
        slots_per_endpoint: int = 1,
    ) -> None:
        if slots_per_endpoint < 1:
            raise ConfigError("an endpoint needs at least one slot")
        self.pool = pool
        self.idle_interval_s = idle_interval_s
        self.slots_per_endpoint = slots_per_endpoint
        self._endpoints: Dict[str, EndpointState] = {
            f"{pool.name}-ep{i}": EndpointState(name=f"{pool.name}-ep{i}")
            for i in range(pool.endpoint_count)
        }
        self._endpoint_seq = pool.endpoint_count
        self._model_pending: Dict[str, int] = {m: 0 for m in pool.models}
        self._model_endpoint: Dict[str, str] = {}

    def endpoints(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """All pool endpoints; each can serve every model of the pool."""
        return [(name, self.pool.models) for name in self._endpoints]

    # -- scheduling ---------------------------------------------------------------

    def _is_not_busy(self, ep: EndpointState, model_id: str, now: float) -> bool:
        if not ep.available:
            return False
        if ep.exclusive_for in (None, model_id) and (
            ep.pending == 0
            or (
                ep.pending < self.slots_per_endpoint
                and ep.current_model == model_id
            )
        ):
            return True
        if (
            ep.pending == 0
            and ep.exclusive_for is not None
            and now - ep.last_request_at >= self.idle_interval_s
        ):
            return True
        return False

    def route(
        self, model_id: str, now: float, exclude: FrozenSet[str] = _NO_EXCLUDE
    ) -> str:
        """Pick the endpoint for a request per the Section IV-C policy."""
        if model_id not in self._model_pending:
            raise RoutingError(f"model {model_id!r} is not in pool {self.pool.name!r}")
        # Rule 1: pending responses pin the model to its endpoint --
        # unless that endpoint's invoker died (or the caller excluded
        # it), in which case the pin is void and the request reroutes
        # like any other.
        if self._model_pending[model_id] > 0:
            endpoint = self._model_endpoint.get(model_id)
            if (
                endpoint is not None
                and endpoint not in exclude
                and self._endpoints[endpoint].available
            ):
                self._endpoints[endpoint].exclusive_for = model_id
                return endpoint
        # Prefer the endpoint that served this model last (warm caches).
        previous = self._model_endpoint.get(model_id)
        if (
            previous is not None
            and previous not in exclude
            and previous in self._endpoints
            and self._is_not_busy(self._endpoints[previous], model_id, now)
        ):
            return previous
        # Rule 2: first endpoint that is not busy serving another model.
        for ep in self._endpoints.values():
            if ep.name not in exclude and self._is_not_busy(ep, model_id, now):
                return ep.name
        # Fallback: least pending work among the healthy endpoints.
        candidates = [
            ep
            for ep in self._endpoints.values()
            if ep.available and ep.name not in exclude
        ]
        if not candidates:
            if exclude:
                raise RoutingError(
                    f"every usable endpoint of pool {self.pool.name!r} is excluded"
                )
            raise RoutingError(
                f"every endpoint of pool {self.pool.name!r} is down"
            )
        return min(candidates, key=lambda e: e.pending).name

    def on_dispatch(self, endpoint: str, model_id: str, now: float) -> None:
        """Record a forwarded request (updates pending counts and pins)."""
        ep = self._endpoints[endpoint]
        ep.pending += 1
        ep.current_model = model_id
        ep.last_request_at = now
        self._model_pending[model_id] += 1
        self._model_endpoint[model_id] = endpoint

    def on_complete(self, endpoint: str, model_id: str, now: float) -> None:
        """Record a returned response (decrements pending counts)."""
        ep = self._endpoints[endpoint]
        if ep.pending == 0 or self._model_pending.get(model_id, 0) == 0:
            raise RoutingError("completion observed without a matching dispatch")
        ep.pending -= 1
        self._model_pending[model_id] -= 1

    def on_failure(self, endpoint: str, model_id: str, now: float) -> None:
        """Release the slot of a request that died mid-flight."""
        ep = self._endpoints.get(endpoint)
        if ep is not None and ep.pending > 0:
            ep.pending -= 1
        if self._model_pending.get(model_id, 0) > 0:
            self._model_pending[model_id] -= 1

    # -- invoker health --------------------------------------------------------------

    def mark_endpoint_down(self, endpoint: str) -> None:
        """Take a dead invoker out of rotation.

        Its exclusivity pin and pending counters are cleared -- the
        in-flight requests died with the invoker and their retries must
        be free to land elsewhere.
        """
        ep = self._endpoints[endpoint]
        ep.healthy = False
        ep.exclusive_for = None
        if ep.pending:
            for model_id, pinned in list(self._model_endpoint.items()):
                if pinned == endpoint:
                    self._model_pending[model_id] = 0
                    del self._model_endpoint[model_id]
            ep.pending = 0

    def mark_endpoint_up(self, endpoint: str) -> None:
        """Return a recovered invoker to rotation (cold, unpinned)."""
        ep = self._endpoints[endpoint]
        ep.healthy = True
        ep.current_model = None

    # -- endpoint lifecycle (scale-out / drain / retire) -------------------------

    def add_endpoint(self, name: Optional[str] = None) -> Tuple[str, Tuple[str, ...]]:
        """Grow the pool by one endpoint (scale-out under pressure)."""
        if name is None:
            name = f"{self.pool.name}-ep{self._endpoint_seq}"
        if name in self._endpoints:
            raise RoutingError(f"endpoint {name!r} already exists")
        self._endpoint_seq += 1
        self._endpoints[name] = EndpointState(name=name)
        return (name, self.pool.models)

    def begin_drain(self, endpoint: str) -> None:
        """Stop routing new requests to ``endpoint``; keep it accounted."""
        ep = self._endpoints[endpoint]
        ep.draining = True
        ep.exclusive_for = None

    def retire_endpoint(self, endpoint: str) -> None:
        """Drop a drained endpoint; refuses while work is in flight."""
        ep = self._endpoints[endpoint]
        if ep.pending:
            raise RoutingError(
                f"endpoint {endpoint!r} still has {ep.pending} request(s) in flight"
            )
        del self._endpoints[endpoint]
        for model_id, pinned in list(self._model_endpoint.items()):
            if pinned == endpoint:
                del self._model_endpoint[model_id]

    # -- introspection ---------------------------------------------------------------

    def exclusive_assignments(self) -> Dict[str, str]:
        """``endpoint -> model`` for endpoints currently marked exclusive."""
        return {
            name: ep.exclusive_for
            for name, ep in self._endpoints.items()
            if ep.exclusive_for is not None
        }


class OneToOneRouter(Router):
    """Baseline: one dedicated endpoint per model."""

    def __init__(self, pool: FnPool) -> None:
        self.pool = pool
        self._map = {m: f"{pool.name}-{m}" for m in pool.models}

    def endpoints(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """One dedicated endpoint per model."""
        return [(ep, (model,)) for model, ep in self._map.items()]

    def route(
        self, model_id: str, now: float, exclude: FrozenSet[str] = _NO_EXCLUDE
    ) -> str:
        """Route to the model's dedicated endpoint (``exclude`` ignored)."""
        try:
            return self._map[model_id]
        except KeyError:
            raise RoutingError(
                f"model {model_id!r} is not in pool {self.pool.name!r}"
            ) from None


class AllInOneRouter(Router):
    """Baseline: a single endpoint serves every model in the pool."""

    def __init__(self, pool: FnPool) -> None:
        self.pool = pool
        self._endpoint = f"{pool.name}-all"

    def endpoints(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """The single shared endpoint serving every model."""
        return [(self._endpoint, self.pool.models)]

    def route(
        self, model_id: str, now: float, exclude: FrozenSet[str] = _NO_EXCLUDE
    ) -> str:
        """Route every model to the shared endpoint (``exclude`` ignored)."""
        if model_id not in self.pool.models:
            raise RoutingError(f"model {model_id!r} is not in pool {self.pool.name!r}")
        return self._endpoint


def make_router(
    strategy: str,
    pool: FnPool,
    idle_interval_s: float = 10.0,
    slots_per_endpoint: int = 1,
) -> Router:
    """Build the router for one of the paper's deployment strategies."""
    if strategy == "fnpacker":
        return FnPackerRouter(
            pool,
            idle_interval_s=idle_interval_s,
            slots_per_endpoint=slots_per_endpoint,
        )
    if strategy == "one-to-one":
        return OneToOneRouter(pool)
    if strategy == "all-in-one":
        return AllInOneRouter(pool)
    raise ConfigError(
        f"unknown strategy {strategy!r}; expected one of {', '.join(STRATEGIES)}"
    )
