"""Batch-affinity hints: keep batchable traffic on one endpoint.

The live batch accumulator (``docs/batching.md``) only ever merges
requests for the same ``<uid, model_id>`` hot pair *on the same
endpoint* -- a leader cannot collect followers that were routed
elsewhere.  :class:`BatchAffinity` is the routing-plane half of that:
a small LRU map remembering which endpoint last served each pair, so a
gateway can offer the next request for the pair to the same endpoint
and give the accumulator something to merge.

It is a **hint**, never a constraint: the gateway falls back to the
ordinary router whenever the remembered endpoint is excluded, saturated,
or dead, and the enclave enforces the same-pair security rule no matter
where a request lands.

Layering: like the rest of :mod:`repro.routing`, this module knows
nothing about what an endpoint is -- stdlib only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple


class BatchAffinity:
    """An LRU map of ``<uid, model_id>`` pairs to their last endpoint."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._pairs: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        self._lock = threading.Lock()

    def remember(self, uid: str, model_id: str, endpoint: str) -> None:
        """Record that ``endpoint`` just served the pair."""
        with self._lock:
            key = (uid, model_id)
            self._pairs.pop(key, None)
            self._pairs[key] = endpoint
            while len(self._pairs) > self.capacity:
                self._pairs.popitem(last=False)

    def lookup(self, uid: str, model_id: str) -> Optional[str]:
        """The endpoint that last served the pair, freshening its LRU slot."""
        with self._lock:
            key = (uid, model_id)
            endpoint = self._pairs.get(key)
            if endpoint is not None:
                self._pairs.move_to_end(key)
            return endpoint

    def forget_endpoint(self, endpoint: str) -> None:
        """Drop every pair pinned to ``endpoint`` (it died or retired)."""
        with self._lock:
            for key in [k for k, v in self._pairs.items() if v == endpoint]:
                del self._pairs[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)


__all__ = ["BatchAffinity"]
