"""Spans, span contexts, and the clocks they read.

A *span* is one timed operation in the serving path -- an RA-TLS
handshake, one Figure-4 stage, a whole request.  Spans nest into trees
(each span knows its parent), carry free-form attributes (model id,
invocation flavour, enclave id, EPC pressure), and read their timestamps
from a :class:`Clock` so the same machinery serves both twins:

- the functional deployment uses :class:`WallClock` (monotonic seconds);
- the simulated twin uses :class:`SimClock`, which reads the discrete-
  event simulation's virtual ``now`` -- span durations then equal the
  virtual-time stage costs to the last bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.errors import SeSeMIError


class Clock:
    """Source of timestamps for spans (seconds as a float)."""

    def now(self) -> float:
        """Current time in seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall-clock time (the functional twin)."""

    def now(self) -> float:
        """Monotonic seconds from :func:`time.perf_counter`."""
        return perf_counter()


class SimClock(Clock):
    """Virtual time of a discrete-event simulation (the simulated twin)."""

    def __init__(self, sim) -> None:
        self._sim = sim

    def now(self) -> float:
        """The simulation's current virtual time."""
        return self._sim.now


class LogicalClock(Clock):
    """A deterministic logical clock: every read advances time one tick.

    Used by the chaos experiments, where wall-clock durations would make
    results non-reproducible: with a logical clock a span's duration is
    the number of timed operations on its critical path, so retries,
    re-attestations, and failovers *lengthen* requests deterministically
    and the latency numbers are bit-identical across runs.
    """

    def __init__(self) -> None:
        self._ticks = 0

    def now(self) -> float:
        """The next tick (reading the clock advances it)."""
        self._ticks += 1
        return float(self._ticks)

    @property
    def ticks(self) -> int:
        """Ticks handed out so far (introspection; does not advance)."""
        return self._ticks


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: which trace, which span."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        """JSON-friendly form for crossing process/enclave boundaries."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: dict) -> "SpanContext":
        """Rebuild a context received from a remote hop."""
        return cls(trace_id=str(data["trace_id"]), span_id=str(data["span_id"]))


@dataclass
class Span:
    """One timed, attributed operation; part of a trace tree."""

    name: str
    context: SpanContext
    parent_id: Optional[str]
    start: float
    end_time: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    #: point-in-time occurrences within the span (retries, faults, ...)
    events: List[Dict[str, Any]] = field(default_factory=list)
    _tracer: Any = field(default=None, repr=False, compare=False)

    @property
    def trace_id(self) -> str:
        """The trace this span belongs to."""
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        """This span's unique id within the tracer."""
        return self.context.span_id

    @property
    def ended(self) -> bool:
        """True once :meth:`end` has been called."""
        return self.end_time is not None

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end, or ``None`` while still open."""
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns the span for chaining."""
        self.attributes[key] = value
        return self

    def set_attributes(self, **attributes: Any) -> "Span":
        """Attach several attributes at once."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        """Record a point-in-time event inside the span.

        Events mark occurrences that have no duration of their own --
        an injected fault, a retry, a circuit opening, a failover to a
        replica -- and surface as instant events in the Chrome trace.
        The timestamp comes from the owning tracer's clock; detached
        spans stamp the event at the span start.
        """
        at = self._tracer.clock.now() if self._tracer is not None else self.start
        self.events.append({"name": name, "at": at, "attributes": dict(attributes)})
        return self

    def end(self, end_time: Optional[float] = None, status: str = "ok") -> "Span":
        """Close the span (idempotent calls are an error)."""
        if self.end_time is not None:
            raise SeSeMIError(f"span {self.name!r} already ended")
        if self._tracer is not None:
            self.end_time = self._tracer._finish(self, end_time)
        else:  # detached span (e.g. rebuilt from JSON)
            self.end_time = end_time if end_time is not None else self.start
        self.status = status
        return self

    def to_mapping(self) -> dict:
        """JSON-friendly form (used by the exporters)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end_time,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_mapping(cls, data: dict) -> "Span":
        """Rebuild a span from its :meth:`to_mapping` form."""
        return cls(
            name=data["name"],
            context=SpanContext(
                trace_id=data["trace_id"], span_id=data["span_id"]
            ),
            parent_id=data.get("parent_id"),
            start=data["start"],
            end_time=data.get("end"),
            status=data.get("status", "ok"),
            attributes=dict(data.get("attributes", {})),
            events=[dict(event) for event in data.get("events", [])],
        )
