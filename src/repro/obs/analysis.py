"""Critical-path analysis over span trees.

This is where the paper's latency-breakdown figures fall out of the
tracing layer instead of ad-hoc accounting:

- :func:`stage_seconds` walks a request's span tree and returns per-stage
  durations -- including the sandbox/enclave startup a cold request
  adopted (the controller links the two trees with an
  ``adopted_startup`` attribute);
- :func:`stage_ratios` turns those into the stacked-bar fractions of
  Figure 8;
- :func:`critical_path` extracts the chain of spans that actually bounds
  a request's latency (Figures 17/18's with/without-SGX comparison reads
  shared vs SGX-only stages off this);
- :func:`breakdown_table` aggregates many requests into the
  mean-per-stage rows the experiment reports print.

All functions operate on plain span lists (live from a
:class:`~repro.obs.tracer.Tracer` or rebuilt from a JSON dump), so
breakdowns can be recomputed offline from an exported trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SeSeMIError
from repro.obs.span import Span

#: tolerance when comparing virtual/wall timestamps
_EPS = 1e-9

#: attribute a stage span carries (set by every instrumentation site)
STAGE_ATTR = "stage"

#: attribute linking a cold request's serve span to its container startup
ADOPTED_STARTUP_ATTR = "adopted_startup"


def children_index(spans: Iterable[Span]) -> Dict[Optional[str], List[Span]]:
    """Map each parent span id to its children, in start order."""
    index: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    for siblings in index.values():
        siblings.sort(key=lambda s: s.start)
    return index


def subtree(spans: Iterable[Span], root: Span) -> List[Span]:
    """``root`` and all its descendants, in start order."""
    index = children_index(spans)
    out: List[Span] = []
    frontier = [root]
    while frontier:
        span = frontier.pop(0)
        out.append(span)
        frontier.extend(index.get(span.span_id, []))
    out.sort(key=lambda s: s.start)
    return out


def find_root(spans: Iterable[Span], name: Optional[str] = None, **attrs) -> Span:
    """The first root span matching ``name`` and attribute filters."""
    for span in spans:
        if span.parent_id is not None:
            continue
        if name is not None and span.name != name:
            continue
        if all(span.attributes.get(k) == v for k, v in attrs.items()):
            return span
    raise SeSeMIError(f"no root span matching name={name!r} {attrs!r}")


def critical_path(spans: Iterable[Span], root: Span) -> List[Span]:
    """The chain of spans bounding ``root``'s latency, outermost first.

    Standard backward walk: starting from the root's end, repeatedly pick
    the child that finishes last at or before the cursor, recurse into
    it, and move the cursor to that child's start.  Gaps (the parent's
    own work) simply advance past children that do not reach the cursor.
    """
    index = children_index(spans)

    def walk(span: Span) -> List[Span]:
        path = [span]
        chain: List[Span] = []
        cursor = span.end_time if span.ended else span.start
        children = [c for c in index.get(span.span_id, []) if c.ended]
        remaining = sorted(children, key=lambda c: c.end_time, reverse=True)
        while remaining:
            pick = None
            for child in remaining:
                if child.end_time <= cursor + _EPS:
                    pick = child
                    break
            if pick is None:
                break
            chain.append(pick)
            cursor = pick.start
            remaining = [c for c in remaining if c.end_time <= pick.start + _EPS]
        for child in reversed(chain):  # restore chronological order
            path.extend(walk(child))
        return path

    return walk(root)


def stage_seconds(
    spans: Iterable[Span],
    root: Span,
    follow_adopted_startup: bool = True,
) -> Dict[str, float]:
    """Per-stage durations for one request's span tree.

    Every span carrying a ``stage`` attribute under ``root`` contributes
    its duration.  When the request adopted a container cold start (the
    controller marks the serve span with ``adopted_startup``), the linked
    ``container.startup`` trace's stage spans -- sandbox and enclave
    initialisation -- are folded in, mirroring how the platform accounts
    cold requests.
    """
    spans = list(spans)
    stages: Dict[str, float] = {}
    adopted: List[str] = []
    for span in subtree(spans, root):
        stage = span.attributes.get(STAGE_ATTR)
        if stage is not None and span.ended:
            stages[stage] = stages.get(stage, 0.0) + span.duration
        link = span.attributes.get(ADOPTED_STARTUP_ATTR)
        if link is not None:
            adopted.append(link)
    if follow_adopted_startup:
        for container_id in adopted:
            startup_root = find_root(
                spans, name="container.startup", container_id=container_id
            )
            for span in subtree(spans, startup_root):
                stage = span.attributes.get(STAGE_ATTR)
                if stage is not None and span.ended:
                    stages[stage] = stages.get(stage, 0.0) + span.duration
    return stages


def stage_ratios(
    stages: Dict[str, float], exclude: Sequence[str] = ("sandbox_init",)
) -> Dict[str, float]:
    """Stage fractions of the total (Figure 8's stacked bars).

    ``exclude`` drops stages before normalising -- the paper's figure
    excludes sandbox initialisation, which the platform (not SeMIRT)
    owns.
    """
    kept = {k: v for k, v in stages.items() if k not in exclude}
    total = sum(kept.values())
    if total <= 0:
        return {k: 0.0 for k in kept}
    return {k: v / total for k, v in kept.items()}


def request_roots(spans: Iterable[Span]) -> List[Span]:
    """All request root spans, in start order."""
    return [s for s in spans if s.parent_id is None and s.name == "request"]


def breakdown_table(
    spans: Iterable[Span], stage_order: Sequence[str]
) -> List[Dict[str, float]]:
    """One per-stage row per request, in ``stage_order`` (missing -> 0)."""
    spans = list(spans)
    rows = []
    for root in request_roots(spans):
        stages = stage_seconds(spans, root)
        rows.append({stage: stages.get(stage, 0.0) for stage in stage_order})
    return rows
