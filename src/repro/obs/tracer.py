"""The tracer: span factory, ambient context, and metrics bridge.

One :class:`Tracer` instance observes one deployment (functional or
simulated).  It hands out spans two ways:

- :meth:`Tracer.span` -- a context manager using an *ambient* per-thread
  span stack, the natural fit for the synchronous functional path
  (``UserSession.infer`` -> ECALL -> stages nest automatically);
- :meth:`Tracer.start_span` with an explicit ``parent`` -- required in
  the simulation, where many interleaved generator processes share one
  Python thread and an ambient stack would cross-contaminate traces.

Every finished span is retained for export/analysis, and -- when the
tracer is constructed with a
:class:`~repro.serverless.telemetry.MetricsRegistry` -- its duration is
automatically observed into a ``span.<name>.seconds`` histogram, so the
Prometheus-style scrape surface and the trace trees stay consistent.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.span import Clock, Span, SpanContext, WallClock


class Tracer:
    """Creates, collects, and finishes spans for one deployment."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        metrics=None,
        service: str = "sesemi",
    ) -> None:
        self.clock = clock or WallClock()
        self.metrics = metrics
        self.service = service
        self.spans: List[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._ambient = threading.local()

    # -- span creation -------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span explicitly; ``parent=None`` starts a new trace."""
        if parent is None:
            trace_id = f"trace-{next(self._trace_ids)}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            context=SpanContext(trace_id=trace_id, span_id=f"span-{next(self._span_ids)}"),
            parent_id=parent_id,
            start=self.clock.now(),
            attributes=dict(attributes),
            _tracer=self,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span under the ambient current span (per-thread stack)."""
        span = self.start_span(name, parent=self.current_span(), **attributes)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        except BaseException:
            stack.pop()
            span.end(status="error")
            raise
        else:
            stack.pop()
            span.end()

    @contextmanager
    def attach(self, span: Span) -> Iterator[Span]:
        """Adopt an existing ``span`` as this thread's ambient parent.

        Worker threads (e.g. the SeMIRT TCS scheduler) use this to
        parent their spans under a request span that was opened on the
        *submitting* thread: the ambient stack is per-thread, so without
        an explicit attach the worker's spans would start new traces.
        The span is NOT ended on exit -- it still belongs to whoever
        opened it.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def current_span(self) -> Optional[Span]:
        """The innermost ambient span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> List[Span]:
        stack = getattr(self._ambient, "stack", None)
        if stack is None:
            stack = []
            self._ambient.stack = stack
        return stack

    # -- finishing ------------------------------------------------------------

    def _finish(self, span: Span, end_time: Optional[float]) -> float:
        """Stamp the end time and feed the metrics bridge (internal)."""
        end = end_time if end_time is not None else self.clock.now()
        if self.metrics is not None:
            self.metrics.histogram(f"span.{span.name}.seconds").observe(
                end - span.start
            )
        return end

    # -- retrieval -------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """All spans that have ended, in start order."""
        return [s for s in self.spans if s.ended]

    def trace(self, trace_id: str) -> List[Span]:
        """All spans belonging to one trace, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def roots(self) -> List[Span]:
        """The root span of every trace, in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        """Drop all collected spans (between experiment repetitions)."""
        self.spans.clear()


def maybe_span(tracer: Optional[Tracer], name: str, **attributes: Any):
    """A ``tracer.span(...)`` context manager, or a no-op when untraced.

    Instrumentation sites call this so components stay tracer-optional:
    constructing a SeMIRT host or client without a tracer costs nothing.
    """
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, **attributes)
