"""repro.obs: end-to-end request tracing for both SeSeMI twins.

The paper's evaluation is built out of per-stage latency breakdowns
(Figures 8, 17, 18; the Prometheus deployment of Appendix F).  This
package makes that visibility first-class instead of ad hoc:

- :mod:`repro.obs.span` -- spans, span contexts, wall/virtual clocks;
- :mod:`repro.obs.tracer` -- the :class:`Tracer` (ambient nesting for
  the functional path, explicit parents for the simulation) plus the
  automatic bridge into :class:`~repro.serverless.telemetry.MetricsRegistry`;
- :mod:`repro.obs.export` -- JSON span dumps and ``chrome://tracing``
  files;
- :mod:`repro.obs.analysis` -- the critical-path analyzer that
  reproduces the paper's breakdown figures directly from span trees.
"""

from repro.obs.analysis import (
    breakdown_table,
    children_index,
    critical_path,
    find_root,
    request_roots,
    stage_ratios,
    stage_seconds,
    subtree,
)
from repro.obs.export import (
    spans_from_json,
    spans_to_json,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.span import Clock, SimClock, Span, SpanContext, WallClock
from repro.obs.tracer import Tracer, maybe_span

__all__ = [
    "Clock",
    "SimClock",
    "Span",
    "SpanContext",
    "Tracer",
    "WallClock",
    "breakdown_table",
    "children_index",
    "critical_path",
    "find_root",
    "maybe_span",
    "request_roots",
    "spans_from_json",
    "spans_to_json",
    "stage_ratios",
    "stage_seconds",
    "subtree",
    "to_chrome_trace",
    "write_chrome_trace",
]
