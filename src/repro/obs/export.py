"""Trace exporters: plain JSON span dumps and Chrome ``chrome://tracing``.

Two formats cover the two consumers:

- :func:`spans_to_json` / :func:`spans_from_json` -- a lossless dump used
  for archiving runs and for the exporter round-trip tests;
- :func:`to_chrome_trace` -- the Trace Event Format understood by
  ``chrome://tracing`` and Perfetto: one *complete* (``"ph": "X"``) event
  per finished span plus one *instant* (``"ph": "i"``) event per span
  event (injected faults, retries, failovers), one row (``tid``) per
  trace, timestamps in microseconds.  ``python -m repro trace
  <experiment>`` writes this.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.span import Span


def spans_to_json(spans: Iterable[Span], indent: Optional[int] = None) -> str:
    """Serialise spans (finished or open) to a JSON array."""
    return json.dumps([s.to_mapping() for s in spans], indent=indent, default=str)


def spans_from_json(payload: str) -> List[Span]:
    """Rebuild detached spans from a :func:`spans_to_json` dump."""
    return [Span.from_mapping(item) for item in json.loads(payload)]


def to_chrome_trace(
    spans: Iterable[Span], service: str = "sesemi"
) -> Dict[str, list]:
    """Convert finished spans to a Chrome Trace Event Format object.

    Each trace becomes one thread row named after its root span; span
    attributes surface in the event ``args`` so they show in the
    inspector's detail pane.  Open spans are skipped (Chrome requires a
    duration for complete events).
    """
    spans = list(spans)
    tid_of: Dict[str, int] = {}
    root_name: Dict[str, str] = {}
    for span in spans:
        if span.trace_id not in tid_of:
            tid_of[span.trace_id] = len(tid_of) + 1
        if span.parent_id is None:
            root_name.setdefault(span.trace_id, span.name)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": service},
        }
    ]
    for trace_id, tid in tid_of.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {
                    "name": f"{root_name.get(trace_id, 'trace')} [{trace_id}]"
                },
            }
        )
    for span in spans:
        if not span.ended:
            continue
        events.append(
            {
                "name": span.name,
                "cat": str(span.attributes.get("stage", "span")),
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end_time - span.start) * 1e6,
                "pid": 1,
                "tid": tid_of[span.trace_id],
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    **{k: _jsonable(v) for k, v in span.attributes.items()},
                },
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event["at"] * 1e6,
                    "pid": 1,
                    "tid": tid_of[span.trace_id],
                    "args": {
                        "span_id": span.span_id,
                        **{
                            k: _jsonable(v)
                            for k, v in event.get("attributes", {}).items()
                        },
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Span], path: str, service: str = "sesemi"
) -> str:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(spans, service=service), handle)
    return path


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
