"""End-to-end functional wiring of a SeSeMI deployment.

:class:`SeSeMIEnvironment` assembles the whole system -- attestation
service, SGX platforms, cloud storage, the KeyService enclave -- and
walks the three workflow stages of Section III:

1. *key setup*: owner/user attest KeyService, register, release keys;
2. *service deployment*: the owner encrypts + uploads models and deploys
   SeMIRT instances;
3. *request serving*: users encrypt requests, SeMIRT enclaves fetch keys
   via mutual attestation and execute inference.

This is the object the examples and integration tests build on.  It is
fully functional (real crypto, real models); the *performance* twin lives
in :mod:`repro.core.simbridge`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.client import OwnerClient, UserClient
from repro.core.keyservice import KEYSERVICE_CONFIG, KeyServiceHost
from repro.core.semirt import (
    IsolationSettings,
    SemirtHost,
    default_semirt_config,
    expected_semirt_measurement,
)
from repro.errors import SeSeMIError
from repro.mlrt.model import Model
from repro.serverless.storage import BlobStore
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuildConfig
from repro.sgx.measurement import EnclaveMeasurement
from repro.sgx.platform import SGX2, HardwareProfile, SgxPlatform


class SeSeMIEnvironment:
    """A complete functional SeSeMI deployment on one logical cluster."""

    def __init__(self, hardware: HardwareProfile = SGX2) -> None:
        self.attestation = AttestationService()
        self.keyservice_platform = SgxPlatform(
            hardware, attestation_service=self.attestation,
            platform_id="keyservice-node",
        )
        self.storage = BlobStore()
        self.keyservice = KeyServiceHost(
            self.keyservice_platform, self.attestation, KEYSERVICE_CONFIG
        )
        self.hardware = hardware
        self._worker_platforms: Dict[str, SgxPlatform] = {}

    # -- principals ------------------------------------------------------------

    def connect_owner(self, name: str = "owner") -> OwnerClient:
        """Create an owner, attest KeyService, and register."""
        owner = OwnerClient(name)
        owner.connect(self.keyservice, self.attestation, self.keyservice.measurement)
        owner.register()
        return owner

    def connect_user(self, name: str = "user") -> UserClient:
        """Create a user, attest KeyService, and register."""
        user = UserClient(name)
        user.connect(self.keyservice, self.attestation, self.keyservice.measurement)
        user.register()
        return user

    # -- worker instances --------------------------------------------------------

    def worker_platform(self, node_id: str = "worker-node") -> SgxPlatform:
        """An SGX platform standing in for one serverless invoker node."""
        platform = self._worker_platforms.get(node_id)
        if platform is None:
            platform = SgxPlatform(
                self.hardware,
                attestation_service=self.attestation,
                platform_id=node_id,
            )
            self._worker_platforms[node_id] = platform
        return platform

    def expected_semirt(
        self,
        framework: str,
        config: Optional[EnclaveBuildConfig] = None,
        isolation: IsolationSettings = IsolationSettings(),
    ) -> EnclaveMeasurement:
        """The ``E_S`` owners/users must grant (derived, not queried)."""
        return expected_semirt_measurement(
            framework,
            self.keyservice.measurement,
            config or default_semirt_config(),
            isolation,
        )

    def launch_semirt(
        self,
        framework: str,
        node_id: str = "worker-node",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: IsolationSettings = IsolationSettings(),
    ) -> SemirtHost:
        """Start a SeMIRT instance (what a cold sandbox start does)."""
        return SemirtHost(
            platform=self.worker_platform(node_id),
            storage=self.storage,
            keyservice_host=self.keyservice,
            framework=framework,
            attestation=self.attestation,
            config=config or default_semirt_config(),
            isolation=isolation,
        )

    # -- one-call convenience ------------------------------------------------------

    def authorize(
        self,
        owner: OwnerClient,
        user: UserClient,
        model: Model,
        model_id: str,
        semirt_measurement: EnclaveMeasurement,
    ) -> None:
        """Full key-setup + deployment for one (model, user, enclave) triple."""
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        owner.deploy_model(model, model_id, self.storage)
        owner.add_model_key(model_id)
        owner.grant_access(model_id, semirt_measurement, user.principal_id)
        user.add_request_key(model_id, semirt_measurement)

    @staticmethod
    def infer(
        user: UserClient,
        semirt: SemirtHost,
        model_id: str,
        x: np.ndarray,
    ) -> np.ndarray:
        """Encrypt, invoke, decrypt -- the user-visible request path."""
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        enclave = semirt.measurement
        enc_request = user.encrypt_request(model_id, enclave, x)
        enc_response = semirt.infer(enc_request, user.principal_id, model_id)
        return user.decrypt_response(model_id, enclave, enc_response)
