"""End-to-end functional wiring of a SeSeMI deployment.

:class:`SeSeMIEnvironment` assembles the whole system -- attestation
service, SGX platforms, cloud storage, the KeyService enclave -- and
walks the three workflow stages of Section III:

1. *key setup*: owner/user attest KeyService, register, release keys;
2. *service deployment*: the owner encrypts + uploads models and deploys
   SeMIRT instances;
3. *request serving*: users encrypt requests, SeMIRT enclaves fetch keys
   via mutual attestation and execute inference.

The surface is the **session API**::

    env = SeSeMIEnvironment()
    handle = env.deploy(model, "ehr-model", owner="hospital")
    handle.grant("alice")
    with env.session("alice", "ehr-model") as session:
        y = session.infer(x)
        ys = session.infer_many(xs)   # keeps a multi-TCS enclave full

Every ``session.infer`` call produces a full span tree on
``env.tracer`` -- the first (cold) call covers all nine Figure-4 serving
stages, from sandbox/enclave start through result encryption.
:meth:`UserSession.infer_many` pipelines requests through the SeMIRT
TCS-slot scheduler (``docs/concurrency.md``), keeping up to
``tcs_count`` requests in flight.

This is the object the examples and integration tests build on.  It is
fully functional (real crypto, real models); the *performance* twin lives
in :mod:`repro.core.simbridge`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.client import OwnerClient, UserClient
from repro.core.gateway import GatewayConfig, InferenceGateway
from repro.core.keyservice import KEYSERVICE_CONFIG, KeyServiceHost
from repro.core.semirt import (
    IsolationSettings,
    SchedulerConfig,
    SemirtHost,
    default_semirt_config,
    expected_semirt_measurement,
)
from repro.core.stages import Stage
from repro.errors import InvocationError, QueueFull, SeSeMIError
from repro.faults.injector import maybe_wire
from repro.faults.resilience import (
    CircuitBreaker,
    Deadline,
    ResilientCaller,
)
from repro.mlrt.model import Model
from repro.obs.tracer import Tracer, maybe_span
from repro.routing import FnPool
from repro.serverless.storage import BlobStore
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuildConfig
from repro.sgx.measurement import EnclaveMeasurement
from repro.sgx.platform import SGX2, HardwareProfile, SgxPlatform


class ModelHandle:
    """A deployed model, returned by :meth:`SeSeMIEnvironment.deploy`.

    Bundles the model id, the owning client, and the expected SeMIRT
    measurement ``E_S`` the deployment targets, so granting access is a
    single call instead of the grant/release/measure triple dance.
    """

    def __init__(
        self,
        env: "SeSeMIEnvironment",
        model: Model,
        model_id: str,
        owner: OwnerClient,
        framework: str = "tvm",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
    ) -> None:
        self._env = env
        self.model = model
        self.model_id = model_id
        self.owner = owner
        self.framework = framework
        self.config = config
        self.isolation = isolation if isolation is not None else IsolationSettings()
        #: the enclave identity ``E_S`` grants are issued against
        self.measurement: EnclaveMeasurement = env.expected_semirt(
            framework, config, isolation
        )

    def grant(self, user: Union[UserClient, str]) -> "ModelHandle":
        """Authorise ``user`` for this model on the target enclave.

        Performs the owner's GRANT_ACCESS and the user's ADD_REQ_KEY in
        one step; returns ``self`` so grants chain fluently.
        """
        client = self._env.user(user)
        if client.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self.owner.grant_access(self.model_id, self.measurement, client.principal_id)
        client.add_request_key(self.model_id, self.measurement)
        return self

    def revoke(self, user: Union[UserClient, str]) -> "ModelHandle":
        """Withdraw a previous grant (extension: REVOKE_ACCESS).

        Revocation is authoritative at KeyService; enclaves that have
        *memoised* this user's keys keep serving until their memo is
        dropped -- push that with
        :meth:`~repro.core.semirt.SemirtHost.invalidate_keys` (or the
        gateway-wide
        :meth:`~repro.core.gateway.InferenceGateway.invalidate_keys`)
        when immediate effect matters.
        """
        client = self._env.user(user)
        if client.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self.owner.revoke_access(self.model_id, self.measurement, client.principal_id)
        return self

    def session(
        self, user: Union[UserClient, str], node_id: str = "worker-node"
    ) -> "UserSession":
        """A serving session for ``user`` against this deployment."""
        return self._env.session(
            user,
            self.model_id,
            framework=self.framework,
            node_id=node_id,
            config=self.config,
            isolation=self.isolation,
        )


class UserSession:
    """One user's serving session against a deployed model.

    The session lazily launches a SeMIRT instance on first
    :meth:`infer` (the cold start -- sandbox + enclave creation happen
    *inside* the traced request, so the cold span tree covers all nine
    Figure-4 stages) and reuses it afterwards (warm/hot paths).

    Passing a pre-launched ``semirt`` host instead *attaches* the
    session to a shared instance -- how several users multiplex one
    multi-TCS enclave.  The session still derives the expected enclave
    identity from ``(framework, config, isolation)`` and encrypts for
    that measurement: an attached host is never *trusted*, only used.
    Attached hosts are not torn down by :meth:`close`; if one dies, the
    session falls back to launching its own instance cold.

    Every request dispatches through an
    :class:`~repro.core.gateway.InferenceGateway`.  A plain session is
    the *degenerate* case -- a one-endpoint pool whose sole host the
    gateway launches lazily -- configured so failures surface to the
    session's own resilience layer exactly as before.  Passing a shared
    multi-endpoint ``gateway`` (from :meth:`SeSeMIEnvironment.gateway`)
    instead routes the session's requests across the gateway's whole
    endpoint fleet under the FnPacker policy.
    """

    def __init__(
        self,
        env: "SeSeMIEnvironment",
        user: UserClient,
        model_id: str,
        framework: str = "tvm",
        node_id: str = "worker-node",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
        scheduler: Optional[SchedulerConfig] = None,
        semirt: Optional[SemirtHost] = None,
        gateway: Optional[InferenceGateway] = None,
    ) -> None:
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self._env = env
        self.user = user
        self.model_id = model_id
        self.framework = framework
        self.node_id = node_id
        self.config = config
        self.isolation = isolation if isolation is not None else IsolationSettings()
        self.scheduler = scheduler
        #: the enclave identity requests are encrypted for
        self.measurement: EnclaveMeasurement = env.expected_semirt(
            framework, config, self.isolation
        )
        self._caller: Optional[ResilientCaller] = None
        self._owns_gateway = gateway is None
        if gateway is not None:
            if semirt is not None:
                raise SeSeMIError("pass either semirt= or gateway=, not both")
            if model_id not in gateway.pool.models:
                raise SeSeMIError(
                    f"model {model_id!r} is not in pool {gateway.pool.name!r}"
                )
            self._gateway = gateway
        else:
            # The degenerate one-endpoint pool: the gateway launches the
            # session's own host lazily inside the first traced request,
            # and surfaces every failure (no redispatch, no breaker) so
            # the session-level resilience semantics stay unchanged.
            pool = FnPool(
                name=f"session:{model_id}@{node_id}",
                models=(model_id,),
                memory_budget=0,
                num_endpoints=1,
            )
            self._gateway = InferenceGateway(
                pool,
                self._launch_host,
                config=GatewayConfig(redispatch_on_crash=False),
                tracer=env.tracer,
            )
            if semirt is not None:
                endpoint = self._gateway.router.endpoints()[0][0]
                self._gateway.attach(endpoint, semirt)

    @property
    def gateway(self) -> InferenceGateway:
        """The gateway this session dispatches through."""
        return self._gateway

    @property
    def semirt(self) -> Optional[SemirtHost]:
        """The live SeMIRT instance, or ``None`` before the first request.

        For a session on a shared multi-endpoint gateway this is the
        fleet's first live host (introspection only).
        """
        return self._gateway.primary_host()

    def infer(
        self,
        x: np.ndarray,
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Encrypt ``x``, serve it, decrypt the result.

        The whole round trip runs under one ``request`` root span on
        ``env.tracer``; the first call additionally traces the sandbox
        and enclave start it triggers.

        When the environment carries an enabled
        :class:`~repro.faults.resilience.ResiliencePolicy`, transport
        failures are retried with backoff under a per-request budget
        (``timeout_s`` overrides the policy default -- the repo-wide
        wait keyword, seconds, ``None`` meaning the policy default
        here; see docs/service.md), guarded by the per-``(model,
        node)`` circuit breaker; a crashed SeMIRT enclave is relaunched
        cold on the next attempt.  Retries appear as ``retry`` events
        on the request's root span.
        """
        tracer = self._env.tracer
        policy = self._env.resilience
        with maybe_span(
            tracer,
            "request",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            node_id=self.node_id,
        ) as root:
            if policy is None or not policy.enabled:
                result = self._attempt(x, root)
            else:
                caller = self._resilient_caller()
                deadline = Deadline(
                    caller.clock,
                    policy.deadline_s if timeout_s is None else timeout_s,
                )

                def record_retry(attempt, exc, delay):
                    if root is not None:
                        root.add_event(
                            "retry",
                            attempt=attempt,
                            error=type(exc).__name__,
                            backoff_s=delay,
                        )

                result = caller.call(
                    f"infer:{self.model_id}@{self.node_id}",
                    lambda attempt: self._attempt(x, root),
                    deadline=deadline,
                    on_retry=record_retry,
                )
        return result

    def submit(self, x: np.ndarray) -> "SessionFuture":
        """Encrypt ``x`` and admit it asynchronously; poll the future.

        The async face of :meth:`infer`: the request is routed and
        admitted through the gateway (:meth:`InferenceGateway.submit`)
        but the call returns immediately with a :class:`SessionFuture`
        whose ``result()`` blocks for the *decrypted* output.  Raises
        :class:`~repro.errors.QueueFull` synchronously when the whole
        fleet is saturated -- admission is where backpressure surfaces.
        Unlike :meth:`infer` the async path does not run under the
        resilience layer; cancellation and retries belong to the caller
        (the HTTP service tier builds exactly that on top).
        """
        injector = self._env.injector
        enc_request = maybe_wire(
            injector,
            "user->semirt",
            self.user.encrypt_request(self.model_id, self.measurement, x),
        )
        submission = self._gateway.submit(
            enc_request, self.user.principal_id, self.model_id
        )
        return SessionFuture(self, submission)

    def stream(
        self, prompt: Sequence[int], max_new_tokens: int
    ) -> "SessionStream":
        """Open an autoregressive stream; iterate decrypted token ids.

        The streaming face of :meth:`submit`: the prompt is sealed with
        the stream AAD, admitted through the gateway's stream plane
        (stream-affinity routing keeps one user's streams on one
        continuous batch), and the returned :class:`SessionStream`
        yields token ids as the enclave decodes them.  ``result()``
        blocks for the whole sequence -- the
        :class:`~repro.core.futures.Future` view.  Like :meth:`submit`,
        streams do not run under the resilience layer; a mid-decode
        failure raises from the iterator.
        """
        injector = self._env.injector
        enc_request = maybe_wire(
            injector,
            "user->semirt",
            self.user.encrypt_stream_request(
                self.model_id, self.measurement, prompt, max_new_tokens
            ),
        )
        handle = self._gateway.open_stream(
            enc_request, self.user.principal_id, self.model_id
        )
        return SessionStream(self, handle)

    def infer_many(
        self, xs: Sequence[np.ndarray], window: Optional[int] = None
    ) -> List[np.ndarray]:
        """Serve a batch, keeping up to ``window`` requests in flight.

        Each input is encrypted and :meth:`SemirtHost.submit`-ted to the
        TCS-slot scheduler; results are collected oldest-first so at most
        ``window`` futures (default: the enclave's ``tcs_count``) are
        outstanding.  When the host's scheduler has the batch
        accumulator armed, the default window widens to keep at least
        two full batches in flight -- the session *feeds* the batch
        window instead of racing it, so a leader always finds followers
        queued behind it.  On :class:`~repro.errors.QueueFull` the
        oldest in-flight future is drained and the submit retried, so
        the batch absorbs its own backpressure.  Outputs come back in
        input order.

        The batch runs under one ``request_batch`` root span; the
        per-request ECALL spans (carrying ``tcs_slot`` / ``queue_wait``)
        parent under it from the scheduler workers.  Unlike
        :meth:`infer`, the batch path does **not** run under the
        resilience layer -- a mid-batch failure re-raises from the
        failing :meth:`~repro.core.semirt.InferenceFuture.result`.
        """
        tracer = self._env.tracer
        injector = self._env.injector
        with maybe_span(
            tracer,
            "request_batch",
            model_id=self.model_id,
            user_id=self.user.principal_id,
            node_id=self.node_id,
            count=len(xs),
        ) as root:
            if self._gateway.endpoint_count > 1:
                return self._infer_many_routed(xs, root)
            semirt, cold = self._gateway.ensure_host()
            if window is None:
                tcs_count = semirt.enclave.config.tcs_count
                policy = semirt.batch_policy
                # the policy derives the window (two full clamped
                # batches, floored at tcs_count), so tuning max_batch
                # can never silently starve the accumulator
                window = (
                    policy.feed_window(tcs_count)
                    if policy is not None
                    else tcs_count
                )
            window = max(1, window)
            results: List[Optional[np.ndarray]] = [None] * len(xs)
            in_flight: deque = deque()  # (input index, future)

            def collect_oldest() -> None:
                idx, future = in_flight.popleft()
                enc_response = maybe_wire(
                    injector, "semirt->user", future.result()
                )
                results[idx] = self.user.decrypt_response(
                    self.model_id, self.measurement, enc_response
                )

            for idx, x in enumerate(xs):
                enc_request = maybe_wire(
                    injector,
                    "user->semirt",
                    self.user.encrypt_request(self.model_id, self.measurement, x),
                )
                while len(in_flight) >= window:
                    collect_oldest()
                while True:
                    try:
                        future = semirt.submit(
                            enc_request, self.user.principal_id, self.model_id
                        )
                        break
                    except QueueFull:
                        if not in_flight:
                            raise
                        collect_oldest()
                in_flight.append((idx, future))
            while in_flight:
                collect_oldest()
            if root is not None:
                root.set_attributes(
                    flavor="cold" if cold else "batch",
                    enclave_id=self.measurement.value,
                    window=window,
                )
        return results

    def _infer_many_routed(
        self, xs: Sequence[np.ndarray], root
    ) -> List[np.ndarray]:
        """Batch serving over a shared fleet: route every item."""
        injector = self._env.injector
        results: List[np.ndarray] = []
        for x in xs:
            enc_request = maybe_wire(
                injector,
                "user->semirt",
                self.user.encrypt_request(self.model_id, self.measurement, x),
            )
            reply = self._gateway.dispatch(
                enc_request, self.user.principal_id, self.model_id
            )
            enc_response = maybe_wire(injector, "semirt->user", reply.output)
            results.append(
                self.user.decrypt_response(
                    self.model_id, self.measurement, enc_response
                )
            )
        if root is not None:
            root.set_attributes(
                flavor="routed", enclave_id=self.measurement.value, window=1
            )
        return results

    def _attempt(self, x: np.ndarray, root) -> np.ndarray:
        """One serving attempt: encrypt, dispatch through the gateway, decrypt."""
        injector = self._env.injector
        enc_request = maybe_wire(
            injector,
            "user->semirt",
            self.user.encrypt_request(self.model_id, self.measurement, x),
        )
        reply = self._gateway.dispatch(
            enc_request, self.user.principal_id, self.model_id
        )
        enc_response = maybe_wire(injector, "semirt->user", reply.output)
        result = self.user.decrypt_response(
            self.model_id, self.measurement, enc_response
        )
        if root is not None:
            plan = reply.host.code.last_plan
            flavor = (
                "cold"
                if reply.decision.cold
                else (plan.kind.value if plan else "warm")
            )
            root.set_attributes(flavor=flavor, enclave_id=self.measurement.value)
        return result

    def _resilient_caller(self) -> ResilientCaller:
        """The session's retry driver, sharing the env-wide breaker."""
        if self._caller is None:
            self._caller = ResilientCaller(
                self._env.resilience,
                clock=self._env.tracer.clock,
                breaker=self._env.breaker_for(
                    f"{self.model_id}@{self.node_id}"
                ),
            )
        return self._caller

    def _launch_host(self, endpoint: str) -> SemirtHost:
        """Cold start: bring up the sandbox (platform) and the enclave.

        This is the session gateway's host launcher: it runs inside the
        traced request that triggered the cold start, so the sandbox and
        enclave spans land under that request's root span.
        """
        tracer = self._env.tracer
        with maybe_span(
            tracer,
            f"stage:{Stage.SANDBOX_INIT.value}",
            stage=Stage.SANDBOX_INIT.value,
            node_id=self.node_id,
        ):
            platform = self._env.worker_platform(self.node_id)
        # SemirtHost opens its own stage:enclave_init span
        return SemirtHost(
            platform=platform,
            storage=self._env.storage,
            keyservice_host=self._env.keyservice,
            framework=self.framework,
            attestation=self._env.attestation,
            config=self.config or default_semirt_config(),
            isolation=self.isolation,
            scheduler=self.scheduler,
            tracer=tracer,
            injector=self._env.injector,
        )

    def close(self) -> None:
        """Tear down the session's own gateway (sandbox reclaim).

        Owned hosts are destroyed; attached (shared) hosts and shared
        gateways are left running -- they belong to whoever launched
        them.
        """
        if self._owns_gateway:
            self._gateway.close()

    def __enter__(self) -> "UserSession":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release the enclave."""
        self.close()


class SessionFuture:
    """An async session request: resolves to the **decrypted** output.

    Returned by :meth:`UserSession.submit`.  Wraps the gateway's
    :class:`~repro.core.gateway.GatewaySubmission` and adds the
    client-side half of the protocol -- response-wire fault injection
    and AEAD decryption -- so ``future.result()`` hands back the same
    plaintext array :meth:`UserSession.infer` would.
    """

    def __init__(self, session: UserSession, submission) -> None:
        self._session = session
        #: the underlying :class:`~repro.core.gateway.GatewaySubmission`
        self.submission = submission

    @property
    def ticket(self) -> Optional[int]:
        """The endpoint-assigned observability id."""
        return self.submission.ticket

    def done(self) -> bool:
        """True once the outcome is sealed (successfully or not)."""
        return self.submission.done()

    def cancelled(self) -> bool:
        """True when cancellation was requested and won."""
        return self.submission.cancelled()

    def cancel(self) -> bool:
        """Cancel the request (releases its enclave execution context)."""
        return self.submission.cancel()

    def result(self, timeout_s: Optional[float] = None) -> np.ndarray:
        """Block for the decrypted output; re-raises the serving failure.

        ``timeout_s`` follows the repo-wide wait rule (seconds,
        ``None`` = wait forever, :class:`~repro.errors.DeadlineExceeded`
        on expiry; docs/service.md).
        """
        session = self._session
        enc_response = maybe_wire(
            session._env.injector,
            "semirt->user",
            self.submission.result(timeout_s=timeout_s),
        )
        return session.user.decrypt_response(
            session.model_id, session.measurement, enc_response
        )


class SessionStream:
    """An async session stream: yields the **decrypted** token sequence.

    Returned by :meth:`UserSession.stream`.  Wraps the gateway's stream
    handle and adds the client half of the streaming protocol: per-frame
    wire fault injection, AEAD frame authentication, and frame-index
    verification -- a host that drops, reorders or replays sealed frames
    surfaces as :class:`~repro.errors.InvocationError` here, not as a
    silently wrong sequence.  Satisfies the
    :class:`~repro.core.futures.Future` protocol (``result()`` returns
    the full token list).
    """

    def __init__(self, session: UserSession, handle) -> None:
        self._session = session
        #: the underlying gateway/host stream of sealed frames
        self.handle = handle

    @property
    def ticket(self) -> Optional[int]:
        """The endpoint-assigned observability id."""
        return self.handle.ticket

    def done(self) -> bool:
        """True once the stream has drained, failed, or been cancelled."""
        return self.handle.done()

    def cancelled(self) -> bool:
        """True when cancellation was requested and won."""
        return self.handle.cancelled()

    def cancel(self) -> bool:
        """Cancel the stream (releases its enclave KV/stream context)."""
        return self.handle.cancel()

    @property
    def ttft_s(self) -> Optional[float]:
        """Seconds from submission to the first token frame."""
        return self.handle.ttft_s

    @property
    def tokens_per_s(self) -> Optional[float]:
        """Decode throughput over the frames delivered so far."""
        return self.handle.tokens_per_s

    def _decode_frame(self, frame: bytes, expected_index: int) -> dict:
        session = self._session
        frame = maybe_wire(session._env.injector, "semirt->user", frame)
        payload = session.user.decrypt_frame(
            session.model_id, session.measurement, frame
        )
        if payload["index"] != expected_index:
            raise InvocationError(
                f"stream frame out of order: expected index {expected_index}, "
                f"got {payload['index']} (dropped, reordered or replayed frame)"
            )
        return payload

    def __iter__(self):
        """Yield decrypted token ids in decode order."""
        for index, frame in enumerate(self.handle):
            yield self._decode_frame(frame, index)["token"]

    def result(self, timeout_s: Optional[float] = None) -> List[int]:
        """Block for the full decrypted token sequence.

        ``timeout_s`` follows the repo-wide wait rule (seconds,
        ``None`` = wait forever, :class:`~repro.errors.DeadlineExceeded`
        on expiry; docs/service.md).
        """
        frames = self.handle.result(timeout_s=timeout_s)
        return [
            self._decode_frame(frame, index)["token"]
            for index, frame in enumerate(frames)
        ]


class SeSeMIEnvironment:
    """A complete functional SeSeMI deployment on one logical cluster.

    By default the environment builds its own single KeyService host; a
    pre-built endpoint (e.g. a
    :class:`~repro.core.keyfleet.FailoverEndpoint` over a
    :class:`~repro.core.keyfleet.KeyServiceFleet`) can be passed as
    ``keyservice`` instead, together with the ``attestation`` service it
    was provisioned against.  A
    :class:`~repro.faults.FaultInjector` passed as ``injector`` threads
    into every wire and crash site on the serving path, and an enabled
    :class:`~repro.faults.resilience.ResiliencePolicy` turns on
    deadline/retry/breaker handling in :meth:`UserSession.infer`.
    """

    def __init__(
        self,
        hardware: HardwareProfile = SGX2,
        *,
        tracer: Optional[Tracer] = None,
        attestation: Optional[AttestationService] = None,
        keyservice=None,
        injector=None,
        resilience=None,
    ) -> None:
        #: wall-clock tracer shared by every component in the environment
        self.tracer = Tracer(service="sesemi") if tracer is None else tracer
        self.attestation = attestation or AttestationService()
        self.storage = BlobStore()
        if keyservice is None:
            self.keyservice_platform: Optional[SgxPlatform] = SgxPlatform(
                hardware, attestation_service=self.attestation,
                platform_id="keyservice-node",
            )
            self.keyservice = KeyServiceHost(
                self.keyservice_platform,
                self.attestation,
                KEYSERVICE_CONFIG,
                tracer=self.tracer,
            )
        else:
            self.keyservice_platform = getattr(keyservice, "platform", None)
            self.keyservice = keyservice
        #: optional :class:`repro.faults.FaultInjector` shared by all sites
        self.injector = injector
        #: optional :class:`repro.faults.resilience.ResiliencePolicy`
        self.resilience = resilience
        self.hardware = hardware
        self._worker_platforms: Dict[str, SgxPlatform] = {}
        self._owners: Dict[str, OwnerClient] = {}
        self._users: Dict[str, UserClient] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, endpoint: str) -> CircuitBreaker:
        """The shared circuit breaker guarding ``endpoint``.

        Sessions targeting the same ``model@node`` share one breaker, so
        a persistently failing instance trips for all of them at once.
        """
        if self.resilience is None:
            raise SeSeMIError("no resilience policy configured")
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(self.resilience.breaker, self.tracer.clock)
            self._breakers[endpoint] = breaker
        return breaker

    # -- principals ------------------------------------------------------------

    def connect_owner(self, name: str = "owner") -> OwnerClient:
        """Create an owner, attest KeyService, and register."""
        owner = OwnerClient(name, tracer=self.tracer)
        owner.connect(
            self.keyservice, self.attestation, self.keyservice.measurement,
            injector=self.injector,
        )
        owner.register()
        self._owners[name] = owner
        return owner

    def connect_user(self, name: str = "user") -> UserClient:
        """Create a user, attest KeyService, and register."""
        user = UserClient(name, tracer=self.tracer)
        user.connect(
            self.keyservice, self.attestation, self.keyservice.measurement,
            injector=self.injector,
        )
        user.register()
        self._users[name] = user
        return user

    def adopt_user(self, user: UserClient) -> UserClient:
        """Register an externally connected user with the environment.

        Used when the client performed its own (possibly replicated)
        registration -- e.g. against every home shard of a
        :class:`~repro.core.keyfleet.KeyServiceFleet` -- and only needs
        sessions from here.
        """
        if user.principal_id is None:
            raise SeSeMIError("user must be registered first")
        self._users[user.name] = user
        return user

    def owner(self, owner: Union[OwnerClient, str, None] = None) -> OwnerClient:
        """Resolve an owner: a client passes through, a name is cached.

        Unknown names are connected and registered on first use, so
        ``env.deploy(model, "m", owner="hospital")`` works in one line.
        """
        if isinstance(owner, OwnerClient):
            return owner
        name = owner or "owner"
        client = self._owners.get(name)
        return client if client is not None else self.connect_owner(name)

    def user(self, user: Union[UserClient, str, None] = None) -> UserClient:
        """Resolve a user like :meth:`owner` resolves owners."""
        if isinstance(user, UserClient):
            return user
        name = user or "user"
        client = self._users.get(name)
        return client if client is not None else self.connect_user(name)

    # -- session API -------------------------------------------------------------

    def deploy(
        self,
        model: Model,
        model_id: str,
        owner: Union[OwnerClient, str, None] = None,
        framework: str = "tvm",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
    ) -> ModelHandle:
        """Encrypt + upload ``model`` and hand its key to KeyService.

        Returns a :class:`ModelHandle` whose :meth:`~ModelHandle.grant`
        authorises users and whose measurement pins the target enclave.
        """
        client = self.owner(owner)
        client.deploy_model(model, model_id, self.storage)
        client.add_model_key(model_id)
        return ModelHandle(
            self, model, model_id, client,
            framework=framework, config=config, isolation=isolation,
        )

    def session(
        self,
        user: Union[UserClient, str],
        model_id: str,
        framework: str = "tvm",
        node_id: str = "worker-node",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
        scheduler: Optional[SchedulerConfig] = None,
        semirt: Optional[SemirtHost] = None,
        gateway: Optional[InferenceGateway] = None,
    ) -> UserSession:
        """A serving session for ``user`` against ``model_id``.

        ``scheduler`` tunes the TCS-slot scheduler of the session's own
        instance; ``semirt`` attaches the session to an already-running
        (shared, possibly multi-TCS) host instead of launching one;
        ``gateway`` (from :meth:`gateway`) dispatches the session's
        requests across a shared multi-endpoint fleet instead.
        """
        return UserSession(
            self,
            self.user(user),
            model_id,
            framework=framework,
            node_id=node_id,
            config=config,
            isolation=isolation,
            scheduler=scheduler,
            semirt=semirt,
            gateway=gateway,
        )

    def gateway(
        self,
        pool: FnPool,
        framework: str = "tvm",
        *,
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
        scheduler: Optional[SchedulerConfig] = None,
        gateway_config: Optional[GatewayConfig] = None,
    ) -> InferenceGateway:
        """An :class:`InferenceGateway` over live endpoints for ``pool``.

        Each endpoint gets its own worker platform (one logical invoker
        node per endpoint) and launches lazily on first use.  The
        default :class:`GatewayConfig` runs the FnPacker strategy with
        ``slots_per_endpoint`` equal to the enclaves' TCS count, so the
        router keeps multi-TCS endpoints full.  Sessions created with
        ``env.session(..., gateway=gw)`` must use the same
        ``(framework, config, isolation)`` triple -- that is the enclave
        identity their requests are encrypted for.
        """
        enclave_config = config or default_semirt_config()
        if gateway_config is None:
            gateway_config = GatewayConfig(
                slots_per_endpoint=enclave_config.tcs_count
            )

        def launcher(endpoint: str) -> SemirtHost:
            with maybe_span(
                self.tracer,
                f"stage:{Stage.SANDBOX_INIT.value}",
                stage=Stage.SANDBOX_INIT.value,
                node_id=endpoint,
            ):
                platform = self.worker_platform(endpoint)
            return SemirtHost(
                platform=platform,
                storage=self.storage,
                keyservice_host=self.keyservice,
                framework=framework,
                attestation=self.attestation,
                config=enclave_config,
                isolation=isolation,
                scheduler=scheduler,
                tracer=self.tracer,
                injector=self.injector,
            )

        return InferenceGateway(
            pool, launcher, config=gateway_config, tracer=self.tracer
        )

    # -- worker instances --------------------------------------------------------

    def worker_platform(self, node_id: str = "worker-node") -> SgxPlatform:
        """An SGX platform standing in for one serverless invoker node."""
        platform = self._worker_platforms.get(node_id)
        if platform is None:
            platform = SgxPlatform(
                self.hardware,
                attestation_service=self.attestation,
                platform_id=node_id,
            )
            self._worker_platforms[node_id] = platform
        return platform

    def expected_semirt(
        self,
        framework: str,
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
    ) -> EnclaveMeasurement:
        """The ``E_S`` owners/users must grant (derived, not queried)."""
        return expected_semirt_measurement(
            framework,
            self.keyservice.measurement,
            config or default_semirt_config(),
            isolation,
        )

    def launch_semirt(
        self,
        framework: str,
        node_id: str = "worker-node",
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
        scheduler: Optional[SchedulerConfig] = None,
    ) -> SemirtHost:
        """Start a SeMIRT instance explicitly (what a cold sandbox does).

        Prefer :meth:`session` for the single-user serving path -- it
        launches lazily inside the traced request and pairs the
        measurement for you.  ``launch_semirt`` is the entry point for
        *shared* instances: launch one multi-TCS host here, then attach
        several sessions to it with ``env.session(..., semirt=host)``.
        """
        return SemirtHost(
            platform=self.worker_platform(node_id),
            storage=self.storage,
            keyservice_host=self.keyservice,
            framework=framework,
            attestation=self.attestation,
            config=config or default_semirt_config(),
            isolation=isolation,
            scheduler=scheduler,
            tracer=self.tracer,
            injector=self.injector,
        )
