"""The nine model-serving stages (Figure 4) and invocation-path planning.

Both SeMIRT implementations -- the functional enclave code in
:mod:`repro.core.semirt` and the simulation actor in
:mod:`repro.core.simbridge` -- share :func:`plan_invocation`, so the
cold/warm/hot semantics of Algorithm 2 exist in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple


class Stage(str, Enum):
    """The serving stages of Figure 4, in order."""

    SANDBOX_INIT = "sandbox_init"
    ENCLAVE_INIT = "enclave_init"
    KEY_RETRIEVAL = "key_retrieval"
    MODEL_LOADING = "model_loading"
    MODEL_DECRYPT = "model_decryption"
    RUNTIME_INIT = "runtime_init"
    REQUEST_DECRYPT = "request_decryption"
    MODEL_INFERENCE = "model_inference"
    RESULT_ENCRYPT = "result_encryption"


#: stages every invocation pays regardless of cache state
PER_REQUEST_STAGES: Tuple[Stage, ...] = (
    Stage.REQUEST_DECRYPT,
    Stage.MODEL_INFERENCE,
    Stage.RESULT_ENCRYPT,
)

#: stages that depend on the serving model (amortisable across requests)
MODEL_STAGES: Tuple[Stage, ...] = (
    Stage.KEY_RETRIEVAL,
    Stage.MODEL_LOADING,
    Stage.MODEL_DECRYPT,
    Stage.RUNTIME_INIT,
)


class InvocationKind(str, Enum):
    """The three ways SeMIRT handles a request (Section IV-B)."""

    COLD = "cold"
    WARM = "warm"
    HOT = "hot"


@dataclass
class SemirtCacheState:
    """What a SeMIRT enclave retains between invocations.

    Mirrors Algorithm 2's globals: the loaded ``Model``, the last
    ``<uid, M_oid>`` key-cache entry ``KC``, plus whether a runtime for
    the current model exists on the serving thread.  ``enclave_ready``
    distinguishes a cold container (no enclave yet) from a warm one.
    """

    enclave_ready: bool = False
    loaded_model: Optional[str] = None           # M_oid of the decrypted model
    key_cache: Optional[Tuple[str, str]] = None  # (M_oid, uid) of cached keys
    runtime_for: Optional[str] = None            # M_oid the thread runtime serves

    def note_served(self, model_id: str, user_id: str) -> None:
        """Record the state after successfully serving a request."""
        self.enclave_ready = True
        self.loaded_model = model_id
        self.key_cache = (model_id, user_id)
        self.runtime_for = model_id


@dataclass(frozen=True)
class InvocationPlan:
    """Which stages a request must execute, and its path classification."""

    kind: InvocationKind
    stages: Tuple[Stage, ...]

    def needs(self, stage: Stage) -> bool:
        """True when this plan executes ``stage``."""
        return stage in self.stages


def plan_invocation(
    state: SemirtCacheState,
    model_id: str,
    user_id: str,
    *,
    key_cache_enabled: bool = True,
    reuse_runtime: bool = True,
) -> InvocationPlan:
    """Decide the invocation path for a request (Algorithm 2, lines 6-15).

    - **cold**: the enclave itself must be created first;
    - **warm**: enclave alive, but the target model is not loaded (or the
      runtime must be rebuilt);
    - **hot**: model loaded, runtime ready, and the key cache holds this
      exact ``<uid, M_oid>`` pair.

    ``key_cache_enabled=False`` and ``reuse_runtime=False`` express the
    strong-isolation build of Section V (measured in Table II): keys are
    re-fetched and the runtime re-initialised on every request.
    """
    stages: List[Stage] = []
    if not state.enclave_ready:
        stages.append(Stage.ENCLAVE_INIT)
    keys_cached = (
        key_cache_enabled
        and state.key_cache == (model_id, user_id)
        and state.enclave_ready
    )
    if not keys_cached:
        stages.append(Stage.KEY_RETRIEVAL)
    model_loaded = state.enclave_ready and state.loaded_model == model_id
    if not model_loaded:
        stages.append(Stage.MODEL_LOADING)
        stages.append(Stage.MODEL_DECRYPT)
    runtime_ready = (
        reuse_runtime and model_loaded and state.runtime_for == model_id
    )
    if not runtime_ready:
        stages.append(Stage.RUNTIME_INIT)
    stages.extend(PER_REQUEST_STAGES)

    if not state.enclave_ready:
        kind = InvocationKind.COLD
    elif model_loaded and runtime_ready and keys_cached:
        kind = InvocationKind.HOT
    else:
        kind = InvocationKind.WARM
    return InvocationPlan(kind=kind, stages=tuple(stages))
