"""SeSeMI core: KeyService, SeMIRT, FnPacker, clients, and their sim twins."""

from repro.core.batching import (
    BatchingSemirtActor,
    BatchPolicy,
    batching_semirt_factory,
)
from repro.core.client import KeyServiceConnection, OwnerClient, UserClient
from repro.core.costs import CostModel
from repro.core.deployment import (
    ModelHandle,
    SeSeMIEnvironment,
    SessionStream,
    UserSession,
)
from repro.core.fnpacker import (
    AllInOneRouter,
    FnPackerRouter,
    FnPool,
    OneToOneRouter,
    Router,
)
from repro.core.futures import Future
from repro.core.gateway import (
    GatewayConfig,
    GatewayReply,
    GatewayStream,
    GatewaySubmission,
    InferenceGateway,
    RouteDecision,
)
from repro.core.keyfleet import KeyServiceFleet
from repro.core.keyservice import (
    KEYSERVICE_CONFIG,
    KeyServiceEnclaveCode,
    KeyServiceHost,
    expected_keyservice_measurement,
)
from repro.core.packer_service import FnPackerService, make_router
from repro.core.semirt import (
    InferenceFuture,
    InferenceStream,
    IsolationSettings,
    SchedulerConfig,
    SemirtEnclaveCode,
    SemirtHost,
    default_semirt_config,
    expected_semirt_measurement,
)
from repro.core.simbridge import (
    IsoReuseSimActor,
    NativeSimActor,
    SemirtSimActor,
    ServableModel,
    UntrustedSimActor,
    iso_reuse_factory,
    native_factory,
    semirt_factory,
    servable_map,
    untrusted_factory,
)
from repro.core.stages import (
    InvocationKind,
    InvocationPlan,
    SemirtCacheState,
    Stage,
    plan_invocation,
)

__all__ = [
    "KEYSERVICE_CONFIG",
    "AllInOneRouter",
    "BatchPolicy",
    "BatchingSemirtActor",
    "CostModel",
    "FnPackerRouter",
    "FnPackerService",
    "FnPool",
    "Future",
    "GatewayConfig",
    "GatewayReply",
    "GatewayStream",
    "GatewaySubmission",
    "InferenceFuture",
    "InferenceGateway",
    "InferenceStream",
    "InvocationKind",
    "InvocationPlan",
    "IsoReuseSimActor",
    "IsolationSettings",
    "KeyServiceConnection",
    "KeyServiceEnclaveCode",
    "KeyServiceFleet",
    "KeyServiceHost",
    "ModelHandle",
    "NativeSimActor",
    "OneToOneRouter",
    "OwnerClient",
    "RouteDecision",
    "Router",
    "SchedulerConfig",
    "SeSeMIEnvironment",
    "SemirtCacheState",
    "SemirtEnclaveCode",
    "SemirtHost",
    "SemirtSimActor",
    "ServableModel",
    "SessionStream",
    "Stage",
    "UntrustedSimActor",
    "UserClient",
    "UserSession",
    "batching_semirt_factory",
    "default_semirt_config",
    "expected_keyservice_measurement",
    "expected_semirt_measurement",
    "iso_reuse_factory",
    "make_router",
    "native_factory",
    "plan_invocation",
    "semirt_factory",
    "servable_map",
    "untrusted_factory",
]
