"""Wire codec for protocol messages.

KeyService operations and SeMIRT key-provisioning requests travel over
RA-TLS channels as byte strings.  This codec turns small structured
messages (dicts of str/int/float/bool/bytes/lists) into deterministic
bytes and back.  Bytes values are hex-tagged inside JSON, keeping the
format debuggable while staying dependency-free.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import ReproError

_BYTES_TAG = "__bytes_hex__"


class WireError(ReproError):
    """Malformed wire message."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, dict):
        # the bytes tag is reserved: a payload dict carrying it would be
        # re-decoded as bytes on the other side (a type-confusion hole)
        if _BYTES_TAG in value:
            raise WireError(
                f"key {_BYTES_TAG!r} is reserved for the bytes encoding"
            )
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        # NaN/Infinity are not valid JSON and NaN breaks canonical
        # (comparable) encoding; refuse rather than emit extensions
        raise WireError(f"non-finite float {value!r} cannot go on the wire")
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise WireError(f"cannot encode {type(value).__name__} on the wire")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            try:
                return bytes.fromhex(value[_BYTES_TAG])
            except ValueError as exc:
                raise WireError(f"bad hex payload: {exc}") from exc
        if _BYTES_TAG in value:
            raise WireError(
                f"key {_BYTES_TAG!r} is reserved for the bytes encoding"
            )
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode(message: dict) -> bytes:
    """Serialise a message dict to canonical bytes."""
    if not isinstance(message, dict):
        raise WireError("wire messages must be dicts")
    try:
        return json.dumps(
            _encode_value(message), sort_keys=True, allow_nan=False
        ).encode()
    except ValueError as exc:
        raise WireError(f"unencodable wire message: {exc}") from exc


def corrupt(raw: bytes, bit_index: int = 0) -> bytes:
    """Flip one bit of a wire message (fault-injection helper).

    Used by :mod:`repro.faults` to model in-flight corruption.  All
    protocol payloads are AEAD-protected, so a single flipped bit must
    surface as an authentication failure at the receiver, never as a
    silently different message.
    """
    if not raw:
        return raw
    index = (bit_index // 8) % len(raw)
    mutated = bytearray(raw)
    mutated[index] ^= 1 << (bit_index % 8)
    return bytes(mutated)


def decode(raw: bytes) -> dict:
    """Inverse of :func:`encode`."""
    try:
        value = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed wire message: {exc}") from exc
    if not isinstance(value, dict):
        raise WireError("wire messages must decode to dicts")
    return _decode_value(value)
