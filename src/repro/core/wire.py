"""Versioned wire codecs for protocol messages.

Protocol payloads travel as byte strings: KeyService operations and
SeMIRT key-provisioning requests over RA-TLS channels, encrypted
request/response payloads between clients and enclaves, and the HTTP
bodies of the service tier.  Two codecs share one frame namespace,
selected by the **first byte** of every frame:

- :class:`JsonWireCodec` -- the original canonical JSON format.  Bytes
  values are hex-tagged (``{"__bytes_hex__": "..."}``), keys are
  sorted, NaN/Infinity are refused.  Every JSON frame starts with
  ``{`` (0x7B), which doubles as its version byte.  Debuggable and
  deterministic; still used for KeyService/RA-TLS control messages and
  sealed state.
- :class:`BinaryWireCodec` -- version byte 0x01.  A length-prefixed
  binary framing (``version byte || field table || raw bytes
  segments``): the message skeleton is a canonical-JSON *field table*
  whose bytes leaves are replaced by segment references, and the raw
  bytes travel verbatim after it.  Large ciphertext payloads are no
  longer hex-doubled; decoding slices them straight out of the frame.

:func:`loads` dispatches on the version byte, so old JSON frames keep
decoding unchanged and receivers never need to know what the sender
chose.  :func:`dumps` defaults to JSON; hot-path callers opt into
``codec=BINARY``.

This module is deliberately stdlib-only (plus ``repro.errors``) so it
stays importable from every layer; ``scripts/check_layering.py``
enforces that.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, List, Tuple

try:  # pragma: no cover - typing fallback exercised only on old runtimes
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.errors import ReproError

_BYTES_TAG = "__bytes_hex__"
_SEGMENT_TAG = "__bytes_seg__"

#: version byte of the binary framing; JSON frames open with ``{`` (0x7B)
BINARY_VERSION = 0x01
_JSON_FIRST_BYTE = 0x7B  # ord("{")

_HEADER_LEN = struct.Struct(">I")
_SEGMENT_COUNT = struct.Struct(">I")
_SEGMENT_LEN = struct.Struct(">Q")


class WireError(ReproError):
    """Malformed wire message."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, dict):
        # both tags are reserved: a payload dict carrying one would be
        # re-decoded as bytes on the other side (a type-confusion hole)
        for tag in (_BYTES_TAG, _SEGMENT_TAG):
            if tag in value:
                raise WireError(
                    f"key {tag!r} is reserved for the bytes encoding"
                )
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        # NaN/Infinity are not valid JSON and NaN breaks canonical
        # (comparable) encoding; refuse rather than emit extensions
        raise WireError(f"non-finite float {value!r} cannot go on the wire")
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise WireError(f"cannot encode {type(value).__name__} on the wire")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            try:
                return bytes.fromhex(value[_BYTES_TAG])
            except (TypeError, ValueError) as exc:
                raise WireError(f"bad hex payload: {exc}") from exc
        for tag in (_BYTES_TAG, _SEGMENT_TAG):
            if tag in value:
                raise WireError(
                    f"key {tag!r} is reserved for the bytes encoding"
                )
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


@runtime_checkable
class WireCodec(Protocol):
    """One frame format: dict in, bytes out, and back."""

    def dumps(self, message: dict) -> bytes:  # pragma: no cover - protocol
        """Serialise a message dict to one wire frame."""
        ...

    def loads(self, raw: bytes) -> dict:  # pragma: no cover - protocol
        """Inverse of :meth:`dumps` for this codec's frames only."""
        ...


class JsonWireCodec:
    """Canonical JSON frames (sorted keys, hex-tagged bytes, no NaN)."""

    version = _JSON_FIRST_BYTE

    def dumps(self, message: dict) -> bytes:
        """Serialise ``message`` as one canonical JSON frame."""
        if not isinstance(message, dict):
            raise WireError("wire messages must be dicts")
        try:
            return json.dumps(
                _encode_value(message), sort_keys=True, allow_nan=False
            ).encode()
        except ValueError as exc:
            raise WireError(f"unencodable wire message: {exc}") from exc

    def loads(self, raw: bytes) -> dict:
        """Decode one JSON frame (bytes values arrive hex-tagged)."""
        try:
            value = json.loads(bytes(raw).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"malformed wire message: {exc}") from exc
        if not isinstance(value, dict):
            raise WireError("wire messages must decode to dicts")
        return _decode_value(value)


class BinaryWireCodec:
    """Binary frames: ``0x01 || field table || raw bytes segments``.

    Frame layout (all integers big-endian)::

        0x01                          version byte
        u32  header_len
        header_len bytes              canonical-JSON field table; every
                                      bytes leaf is {"__bytes_seg__": i}
        u32  segment_count
        segment_count x (u64 len || len raw bytes)

    The field table reuses the JSON codec's canonical rules (sorted
    keys, no NaN, reserved tags refused), so the two codecs accept and
    produce exactly the same value domain; only the bytes transport
    differs.  Decoding slices segments directly out of the frame --
    ciphertext never round-trips through hex.
    """

    version = BINARY_VERSION

    def dumps(self, message: dict) -> bytes:
        """Serialise ``message`` as one binary frame (see class docs)."""
        if not isinstance(message, dict):
            raise WireError("wire messages must be dicts")
        segments: List[bytes] = []
        skeleton = self._strip_bytes(message, segments)
        try:
            header = json.dumps(
                skeleton, sort_keys=True, allow_nan=False
            ).encode()
        except ValueError as exc:
            raise WireError(f"unencodable wire message: {exc}") from exc
        parts = [
            bytes((BINARY_VERSION,)),
            _HEADER_LEN.pack(len(header)),
            header,
            _SEGMENT_COUNT.pack(len(segments)),
        ]
        for segment in segments:
            parts.append(_SEGMENT_LEN.pack(len(segment)))
            parts.append(segment)
        return b"".join(parts)

    def loads(self, raw: bytes) -> dict:
        """Decode one binary frame, slicing segments without copies."""
        view = memoryview(raw)
        if len(view) < 1 + _HEADER_LEN.size or view[0] != BINARY_VERSION:
            raise WireError("not a binary wire frame")
        offset = 1
        (header_len,) = _HEADER_LEN.unpack_from(view, offset)
        offset += _HEADER_LEN.size
        if offset + header_len + _SEGMENT_COUNT.size > len(view):
            raise WireError("truncated binary wire frame")
        try:
            skeleton = json.loads(bytes(view[offset : offset + header_len]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"malformed wire field table: {exc}") from exc
        if not isinstance(skeleton, dict):
            raise WireError("wire messages must decode to dicts")
        offset += header_len
        (count,) = _SEGMENT_COUNT.unpack_from(view, offset)
        offset += _SEGMENT_COUNT.size
        spans: List[Tuple[int, int]] = []
        for _ in range(count):
            if offset + _SEGMENT_LEN.size > len(view):
                raise WireError("truncated binary wire frame")
            (length,) = _SEGMENT_LEN.unpack_from(view, offset)
            offset += _SEGMENT_LEN.size
            if offset + length > len(view):
                raise WireError("truncated binary wire frame")
            spans.append((offset, offset + length))
            offset += length
        if offset != len(view):
            raise WireError("trailing bytes after binary wire frame")
        return self._graft_bytes(skeleton, view, spans)

    # -- skeleton walks --------------------------------------------------------

    def _strip_bytes(self, value: Any, segments: List[bytes]) -> Any:
        if isinstance(value, (bytes, bytearray)):
            segments.append(bytes(value))
            return {_SEGMENT_TAG: len(segments) - 1}
        if isinstance(value, dict):
            for tag in (_BYTES_TAG, _SEGMENT_TAG):
                if tag in value:
                    raise WireError(
                        f"key {tag!r} is reserved for the bytes encoding"
                    )
            return {k: self._strip_bytes(v, segments) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [self._strip_bytes(v, segments) for v in value]
        if isinstance(value, float) and not math.isfinite(value):
            raise WireError(
                f"non-finite float {value!r} cannot go on the wire"
            )
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        raise WireError(f"cannot encode {type(value).__name__} on the wire")

    def _graft_bytes(
        self, value: Any, view: memoryview, spans: List[Tuple[int, int]]
    ) -> Any:
        if isinstance(value, dict):
            if set(value.keys()) == {_SEGMENT_TAG}:
                index = value[_SEGMENT_TAG]
                if not isinstance(index, int) or not 0 <= index < len(spans):
                    raise WireError(f"bad segment reference {index!r}")
                start, stop = spans[index]
                return bytes(view[start:stop])
            for tag in (_BYTES_TAG, _SEGMENT_TAG):
                if tag in value:
                    raise WireError(
                        f"key {tag!r} is reserved for the bytes encoding"
                    )
            return {
                k: self._graft_bytes(v, view, spans) for k, v in value.items()
            }
        if isinstance(value, list):
            return [self._graft_bytes(v, view, spans) for v in value]
        return value


#: shared codec instances (both are stateless and thread-safe)
JSON = JsonWireCodec()
BINARY = BinaryWireCodec()

_CODECS_BY_VERSION = {
    _JSON_FIRST_BYTE: JSON,
    BINARY_VERSION: BINARY,
}


def dumps(message: dict, codec: "WireCodec" = JSON) -> bytes:
    """Serialise ``message`` with ``codec`` (canonical JSON by default).

    Hot-path callers pass ``codec=wire.BINARY`` so ciphertext travels
    as raw segments; control-plane messages keep the JSON default.
    """
    return codec.dumps(message)


def loads(raw: bytes) -> dict:
    """Decode one frame of *any* known version.

    The first byte selects the codec: ``{`` (0x7B) is a canonical JSON
    frame, 0x01 is the binary framing.  Anything else is refused, so a
    frame can never be mis-parsed as the wrong format.
    """
    if not raw:
        raise WireError("empty wire frame")
    codec = _CODECS_BY_VERSION.get(raw[0])
    if codec is None:
        raise WireError(f"unknown wire frame version 0x{raw[0]:02x}")
    return codec.loads(raw)


def corrupt(raw: bytes, bit_index: int = 0) -> bytes:
    """Flip one bit of a wire message (fault-injection helper).

    Used by :mod:`repro.faults` to model in-flight corruption.  All
    protocol payloads are AEAD-protected, so a single flipped bit must
    surface as an authentication failure at the receiver, never as a
    silently different message.  Works on frames of every version.
    """
    if not raw:
        return raw
    index = (bit_index // 8) % len(raw)
    mutated = bytearray(raw)
    mutated[index] ^= 1 << (bit_index % 8)
    return bytes(mutated)


__all__ = [
    "BINARY",
    "BINARY_VERSION",
    "BinaryWireCodec",
    "JSON",
    "JsonWireCodec",
    "WireCodec",
    "WireError",
    "corrupt",
    "dumps",
    "loads",
]
