"""FnPackerService: adapt :mod:`repro.routing` onto the simulated Controller.

The paper's FnPacker is a standalone Go service the model owner deploys
in front of the serverless proxy: it registers the pool's function
endpoints with the platform, receives user requests, applies the
scheduling policy, and forwards to OpenWhisk.  This module is that
service for the simulated platform -- but it is a *thin adapter*: all
routing policy lives in the twin-agnostic :mod:`repro.routing` package
(shared with the functional twin's
:class:`~repro.core.gateway.InferenceGateway`).  What remains here is
the glue onto the discrete-event simulator: deploying endpoint actions,
converting completions into router observations, and the owner-facing
resize/drain/retire lifecycle mapped onto Controller deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.costs import CostModel
from repro.core.simbridge import ServableModel, semirt_factory
from repro.errors import ConfigError, RoutingError
from repro.routing import STRATEGIES, FnPackerRouter, FnPool, make_router
from repro.serverless.action import ActionSpec, Request, round_memory_budget
from repro.serverless.controller import Controller
from repro.sim.core import Event, Simulation

__all__ = ["STRATEGIES", "FnPackerService", "PoolStats", "make_router"]


@dataclass
class PoolStats:
    """Execution statistics FnPacker keeps per model (Section IV-C)."""

    dispatched: int = 0
    completed: int = 0
    last_invocation_at: float = float("-inf")
    #: latency of the last execution of each kind (cold/warm/hot)
    last_latency_by_kind: Dict[str, float] = field(default_factory=dict)


class FnPackerService:
    """The request-routing front end for one FnPool (simulated twin)."""

    def __init__(
        self,
        sim: Simulation,
        controller: Controller,
        pool: FnPool,
        models: Dict[str, ServableModel],
        cost: CostModel,
        strategy: str = "fnpacker",
        tcs_count: int = 1,
        idle_interval_s: float = 10.0,
    ) -> None:
        missing = [m for m in pool.models if m not in models]
        if missing:
            raise ConfigError(f"pool references unknown models: {missing}")
        self.sim = sim
        self.controller = controller
        self.pool = pool
        self.models = models
        self.cost = cost
        self.tcs_count = tcs_count
        self.strategy = strategy
        self.router = make_router(
            strategy, pool, idle_interval_s, slots_per_endpoint=tcs_count
        )
        self.stats: Dict[str, PoolStats] = {m: PoolStats() for m in pool.models}
        for endpoint, servable_ids in self.router.endpoints():
            self._deploy_endpoint(endpoint, tuple(servable_ids))

    # -- deployment -----------------------------------------------------------

    def _budget_for(self, servable_ids: Tuple[str, ...]) -> int:
        """Memory budget for an endpoint: sized for its largest model."""
        ids = servable_ids or self.pool.models
        largest = max(
            self.models[m].enclave_bytes
            + (self.tcs_count - 1) * self.models[m].buffer_bytes
            for m in ids
        )
        if self.pool.memory_budget:
            largest = max(largest, self.pool.memory_budget)
        return round_memory_budget(largest)

    def _deploy_endpoint(self, endpoint: str, servable_ids: Tuple[str, ...]) -> None:
        subset_ids = servable_ids or self.pool.models
        subset = {m: self.models[m] for m in subset_ids}
        spec = ActionSpec(
            name=endpoint,
            image="semirt",
            memory_budget=self._budget_for(tuple(subset_ids)),
            concurrency=self.tcs_count,
        )
        self.controller.deploy(
            spec, semirt_factory(subset, self.cost, tcs_count=self.tcs_count)
        )

    # -- the user-facing entry point ---------------------------------------------

    def invoke(self, model_id: str, user_id: str, payload=None) -> Event:
        """Route one (encrypted) request; returns the completion event."""
        if model_id not in self.stats:
            raise RoutingError(f"model {model_id!r} is not in pool {self.pool.name!r}")
        endpoint = self.router.route(model_id, self.sim.now)
        request = Request(model_id=model_id, user_id=user_id, payload=payload)
        done = self.controller.invoke(endpoint, request)
        self.router.on_dispatch(endpoint, model_id, self.sim.now)
        stats = self.stats[model_id]
        stats.dispatched += 1
        stats.last_invocation_at = self.sim.now
        self.sim.process(
            self._observe(done, endpoint, model_id),
            name=f"fnpacker:{request.request_id}",
        )
        return done

    def _observe(self, done: Event, endpoint: str, model_id: str):
        result = yield done
        self.router.on_complete(endpoint, model_id, self.sim.now)
        stats = self.stats[model_id]
        stats.completed += 1
        stats.last_latency_by_kind[result.kind] = result.latency

    # -- owner-facing lifecycle ---------------------------------------------------

    def resize(self, extra_endpoints: int = 1) -> Tuple[str, ...]:
        """Grow the pool: add endpoints and deploy their actions."""
        added = []
        for _ in range(extra_endpoints):
            endpoint, servable = self.router.add_endpoint()
            self._deploy_endpoint(endpoint, tuple(servable))
            added.append(endpoint)
        return tuple(added)

    def drain_endpoint(self, endpoint: str) -> None:
        """Stop routing new requests to ``endpoint``; in-flight finishes."""
        self.router.begin_drain(endpoint)

    def retire_endpoint(self, endpoint: str) -> None:
        """Remove a drained endpoint and reclaim its idle containers."""
        self.router.retire_endpoint(endpoint)
        self.controller.retire_action(endpoint)

    # -- introspection ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return sum(s.dispatched - s.completed for s in self.stats.values())

    def exclusive_endpoints(self) -> Dict[str, str]:
        """``endpoint -> model`` for currently-exclusive endpoints."""
        if isinstance(self.router, FnPackerRouter):
            return self.router.exclusive_assignments()
        return {}
