"""InferenceGateway: the functional twin's routing front end.

The paper's FnPacker routes *simulated* requests; this module puts the
same routing plane (:mod:`repro.routing`) in front of live
:class:`~repro.core.semirt.SemirtHost` endpoints, so a request that
runs real crypto and a real model flows through the identical
Section IV-C policy the benchmarks measure.

The gateway owns the endpoint fleet for one :class:`FnPool`:

- hosts launch **lazily** through a caller-supplied ``launcher``
  callback the first time the router picks their endpoint (the cold
  start happens inside the request, like a serverless platform);
- :class:`~repro.errors.QueueFull` from an endpoint's admission queue
  is **backpressure, not failure**: the gateway excludes that endpoint
  and reroutes -- it never blind-retries into the same full queue
  (see ``docs/faults.md``).  Only when *every* endpoint is saturated
  does the ``QueueFull`` surface to the caller;
- a crashed endpoint is marked down and the request **reroutes** to a
  healthy peer (``redispatch_on_crash``); when no peer is left the
  gateway relaunches the endpoint cold -- which is exactly the
  single-endpoint degenerate case :class:`~repro.core.deployment.UserSession`
  is built on;
- sustained queue pressure can **scale out** the fleet
  (:class:`~repro.routing.ScaleOutPolicy`), and endpoints can be
  drained then retired;
- optional per-endpoint :class:`~repro.faults.resilience.CircuitBreaker`
  guards convert a persistently failing endpoint into a routing
  exclusion instead of an error storm.

Every dispatched request emits a ``route`` span on the tracer with the
decision attributes (``endpoint``, ``exclusive``, ``reroutes``), so
FnPacker packing behaviour is observable on the functional twin too.

When an endpoint's scheduler runs the hot-path **batch accumulator**
(``SchedulerConfig.batch``), the gateway additionally keeps a
:class:`~repro.routing.BatchAffinity` hint: the next request for a
``<uid, model_id>`` pair is offered to the endpoint that just served
it, so the accumulator actually sees followers to merge.  The hint is
tried once per dispatch, surfaces as the ``batch_affinity`` attribute
on the ``route`` span, and is dropped the moment the endpoint is
excluded, saturated, or dead -- batching is a throughput hint, never a
correctness constraint (``docs/batching.md``).

Arming ``GatewayConfig.warm_pool`` puts a
:class:`~repro.warmpool.WarmPoolManager` in charge of the fleet's
temperature: warm-endpoint reuse follows the configured strategy (a
one-shot hint, same discipline as batch affinity), every dispatch is
classified cold/warm/hot, measured cold-start latency lands on the
:class:`RouteDecision` and the ``route`` span, and periodic
:meth:`InferenceGateway.maintain` calls run the scale-to-zero janitor
and the predictive pre-warmer (``docs/warmpool.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.semirt import InferenceFuture, InferenceStream, SemirtHost
from repro.errors import (
    DeadlineExceeded,
    EnclaveError,
    QueueFull,
    RequestCancelled,
    RoutingError,
    TransportError,
)
from repro.faults.resilience import BreakerPolicy, CircuitBreaker
from repro.obs.tracer import Tracer, maybe_span
from repro.routing import (
    BatchAffinity,
    FnPackerRouter,
    FnPool,
    PressureTracker,
    Router,
    ScaleOutPolicy,
    make_router,
)
from repro.warmpool import WarmPoolConfig, WarmPoolManager

#: a host launcher: endpoint name -> live SemirtHost
HostLauncher = Callable[[str], SemirtHost]


@dataclass(frozen=True)
class GatewayConfig:
    """Behaviour knobs for one :class:`InferenceGateway`.

    ``redispatch_on_crash`` controls whether an endpoint failure is
    absorbed by rerouting (the fleet case) or surfaced to the caller
    (the degenerate single-endpoint session, where the caller's own
    resilience layer owns the retry decision).  ``breaker`` arms one
    :class:`CircuitBreaker` per endpoint; ``scale_out`` arms fleet
    growth under sustained backpressure.

    ``warm_pool`` arms a :class:`~repro.warmpool.WarmPoolManager`: warm
    endpoint reuse becomes strategy-driven, idle endpoints are retired
    by the janitor through :meth:`InferenceGateway.maintain`, and when
    ``warm_pool.scale_out`` is set the manager owns the pressure
    tracker (reactive growth joins the warm-pool decision log) --
    leave ``scale_out`` here ``None`` in that case.
    """

    strategy: str = "fnpacker"
    idle_interval_s: float = 10.0
    slots_per_endpoint: int = 1
    scale_out: Optional[ScaleOutPolicy] = None
    breaker: Optional[BreakerPolicy] = None
    redispatch_on_crash: bool = True
    max_redispatch: int = 2
    warm_pool: Optional[WarmPoolConfig] = None


@dataclass
class RouteDecision:
    """How one request was routed (mirrored onto the ``route`` span)."""

    endpoint: str
    exclusive: bool = False
    reroutes: int = 0          # endpoint exclusions before this one landed
    redispatches: int = 0      # failed serving attempts before this one
    cold: bool = False         # the endpoint's host was launched for this request
    cold_start_s: float = 0.0  # wall-clock launch duration when cold
    temperature: str = ""      # cold/warm/hot (warm pool armed only)
    batch_affinity: bool = False  # endpoint chosen by the batch-affinity hint
    warm_hint: bool = False    # endpoint chosen by the warm-pool strategy


@dataclass
class GatewayReply:
    """The encrypted response plus its routing decision."""

    output: bytes
    decision: RouteDecision
    host: SemirtHost = field(repr=False, default=None)


class InferenceGateway:
    """Route functional requests over a fleet of live SeMIRT endpoints."""

    def __init__(
        self,
        pool: FnPool,
        launcher: HostLauncher,
        *,
        config: Optional[GatewayConfig] = None,
        router: Optional[Router] = None,
        tracer: Optional[Tracer] = None,
        clock=None,
    ) -> None:
        self.pool = pool
        self.config = config if config is not None else GatewayConfig()
        self.router = router if router is not None else make_router(
            self.config.strategy,
            pool,
            idle_interval_s=self.config.idle_interval_s,
            slots_per_endpoint=self.config.slots_per_endpoint,
        )
        self.tracer = tracer
        self._clock = clock if clock is not None else (
            tracer.clock if tracer is not None else None
        )
        self._launcher = launcher
        self._hosts: Dict[str, SemirtHost] = {}
        self._owned: Set[str] = set()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._pressure = (
            PressureTracker(self.config.scale_out)
            if self.config.scale_out is not None
            else None
        )
        self.warm_pool: Optional[WarmPoolManager] = (
            WarmPoolManager(self.config.warm_pool)
            if self.config.warm_pool is not None
            else None
        )
        self._in_flight = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._launch_lock = threading.Lock()
        #: <uid, model_id> -> endpoint hints, fed only by endpoints whose
        #: scheduler runs the batch accumulator (see dispatch)
        self._affinity = BatchAffinity()

    # -- fleet wiring -----------------------------------------------------------

    def attach(self, endpoint: str, host: SemirtHost) -> None:
        """Bind a pre-launched (shared) host to ``endpoint``.

        Attached hosts are used, never owned: :meth:`close` and
        retirement leave them running for whoever launched them.
        """
        known = {name for name, _ in self.router.endpoints()}
        if endpoint not in known:
            raise RoutingError(f"unknown endpoint {endpoint!r}")
        with self._lock:
            self._hosts[endpoint] = host
            self._owned.discard(endpoint)
        if self.warm_pool is not None:
            # attached hosts are warm from the start but never the
            # janitor's to retire
            self.warm_pool.on_launch(endpoint, self._now(), pinned=True)

    def host(self, endpoint: str) -> Optional[SemirtHost]:
        """The live host bound to ``endpoint`` (``None`` before launch)."""
        with self._lock:
            return self._hosts.get(endpoint)

    def hosts(self) -> Dict[str, SemirtHost]:
        """A snapshot of all live endpoint hosts."""
        with self._lock:
            return dict(self._hosts)

    def primary_host(self) -> Optional[SemirtHost]:
        """The single live host of a one-endpoint gateway (else first)."""
        with self._lock:
            for host in self._hosts.values():
                return host
            return None

    @property
    def endpoint_count(self) -> int:
        return len(self.router.endpoints())

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock.now()
        return 0.0

    def _breaker(self, endpoint: str) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker, clock=self._clock)
            self._breakers[endpoint] = breaker
        return breaker

    def _pressure_armed(self) -> bool:
        return self._pressure is not None or (
            self.warm_pool is not None and self.warm_pool.reactive is not None
        )

    def _observe_pressure(self, saw_pressure: bool) -> bool:
        """One backpressure observation; ``True`` means grow the fleet.

        When the warm pool is armed with ``scale_out`` the manager owns
        the tracker (reactive growth joins the warm-pool decision log);
        otherwise the gateway's own tracker decides.
        """
        if self.warm_pool is not None and self.warm_pool.reactive is not None:
            return self.warm_pool.on_pressure(saw_pressure, self.endpoint_count)
        if self._pressure is not None:
            return self._pressure.observe(saw_pressure, self.endpoint_count)
        return False

    def _warm_suggestion(self, model_id: str, exclude: Set[str]) -> Optional[str]:
        """The warm-pool strategy's reuse pick, validated for routing.

        The suggestion must still be a live, idle, unexcluded endpoint
        whose exclusivity pin (if any) matches ``model_id`` -- the warm
        pool's view can lag the router's by a dispatch, so the router
        state is the authority.
        """
        if self.warm_pool is None:
            return None
        suggestion = self.warm_pool.suggest(model_id, self._now())
        if suggestion is None or suggestion in exclude:
            return None
        states = getattr(self.router, "_endpoints", None)
        if states is None or suggestion not in states:
            return None
        state = states[suggestion]
        if not state.available or state.pending > 0:
            return None
        if state.exclusive_for not in (None, model_id):
            return None
        host = self.host(suggestion)
        if host is None or not host.enclave.alive:
            return None  # nothing warm to reuse; let the router decide
        return suggestion

    # -- dispatch ----------------------------------------------------------------

    def dispatch(
        self,
        enc_request: bytes,
        user_id: str,
        model_id: str,
        timeout_s: Optional[float] = None,
    ) -> GatewayReply:
        """Route one encrypted request to an endpoint and serve it.

        Raises whatever the serving attempt raised once rerouting and
        redispatching are exhausted; :class:`QueueFull` means the whole
        fleet is saturated (backpressure -- the caller should shed or
        slow down, not retry immediately).
        """
        exclude: Set[str] = set()
        decision = RouteDecision(endpoint="")
        saw_pressure = False
        pressure_observed = False
        warm_hint_tried = False
        grew_for_empty = False
        last_queue_full: Optional[QueueFull] = None
        #: one shot at the batch-affinity hint per dispatch -- if the
        #: remembered endpoint cannot take the request, the ordinary
        #: router decides and the hint is not retried
        affinity_hint = self._affinity.lookup(user_id, model_id)
        # Bounded walk: every iteration either excludes an endpoint,
        # consumes a redispatch, or returns.
        for _ in range(4 * (self.config.max_redispatch + self.pool.endpoint_count + 2)):
            decision.batch_affinity = False
            decision.warm_hint = False
            endpoint = None
            if affinity_hint is not None:
                hinted, affinity_hint = affinity_hint, None
                if hinted not in exclude and any(
                    name == hinted for name, _ in self.router.endpoints()
                ):
                    endpoint = hinted
                    decision.batch_affinity = True
            if endpoint is None and not warm_hint_tried:
                # one shot at the warm-pool strategy's pick, same
                # discipline as the batch-affinity hint
                warm_hint_tried = True
                warm = self._warm_suggestion(model_id, exclude)
                if warm is not None:
                    endpoint = warm
                    decision.warm_hint = True
            try:
                if endpoint is None:
                    endpoint = self.router.route(
                        model_id, self._now(), frozenset(exclude)
                    )
            except RoutingError:
                if last_queue_full is not None:
                    # the whole fleet is saturated: one pressure
                    # observation per dispatch, spawning only under
                    # *sustained* backpressure.
                    grew = False
                    if self._pressure_armed() and not pressure_observed:
                        pressure_observed = True
                        if self._observe_pressure(True):
                            grew = self._grow_fleet()
                    if grew:
                        last_queue_full = None
                        continue
                    raise last_queue_full
                endpoint = self._relaunch_candidate(exclude)
                if endpoint is None:
                    # a janitor-emptied fleet (scale-to-zero) regrows on
                    # demand: the cold start is the request's price.
                    if (
                        self.warm_pool is not None
                        and not grew_for_empty
                        and not exclude
                        and self._grow_fleet()
                    ):
                        grew_for_empty = True
                        continue
                    raise
            breaker = self._breaker(endpoint)
            if breaker is not None and breaker.state == "open":
                exclude.add(endpoint)
                decision.reroutes += 1
                continue
            try:
                host, cold, launch_s = self._ensure_host(endpoint, exclude)
            except _Reroute:
                decision.reroutes += 1
                continue
            decision.endpoint = endpoint
            decision.cold = cold
            decision.cold_start_s = launch_s
            try:
                ticket = host.submit(enc_request, user_id, model_id)
            except QueueFull as exc:
                saw_pressure = True
                last_queue_full = exc
                exclude.add(endpoint)
                decision.reroutes += 1
                continue
            except (EnclaveError, TransportError) as exc:
                # the endpoint died at admission (e.g. an injected
                # crash): nothing was dispatched, so only health and
                # breaker state change.
                self._note_endpoint_death(endpoint, breaker)
                if (
                    self.config.redispatch_on_crash
                    and decision.redispatches < self.config.max_redispatch
                ):
                    decision.redispatches += 1
                    exclude.add(endpoint)
                    continue
                raise exc
            now = self._now()
            self.router.on_dispatch(endpoint, model_id, now)
            if self.warm_pool is not None:
                decision.temperature = self.warm_pool.on_dispatch(
                    endpoint, model_id, now, launched=cold
                )
            with self._lock:
                self._in_flight += 1
            decision.exclusive = self._is_exclusive(endpoint, model_id)
            try:
                with maybe_span(
                    self.tracer,
                    "route",
                    endpoint=endpoint,
                    model_id=model_id,
                    exclusive=decision.exclusive,
                    reroutes=decision.reroutes,
                    redispatches=decision.redispatches,
                    cold=decision.cold,
                    cold_start_s=decision.cold_start_s,
                    temperature=decision.temperature,
                    batch_affinity=decision.batch_affinity,
                    warm_hint=decision.warm_hint,
                ):
                    output = ticket.result(timeout_s=timeout_s)
            except Exception as exc:
                self._finish(endpoint, model_id, ok=False)
                if not host.enclave.alive:
                    self._note_endpoint_death(endpoint, breaker)
                elif breaker is not None:
                    breaker.on_failure()
                if (
                    isinstance(exc, (EnclaveError, TransportError))
                    and not isinstance(exc, QueueFull)
                    and self.config.redispatch_on_crash
                    and decision.redispatches < self.config.max_redispatch
                ):
                    decision.redispatches += 1
                    exclude.add(endpoint)
                    continue
                raise
            self._finish(endpoint, model_id, ok=True)
            if breaker is not None:
                breaker.on_success()
            if getattr(host, "batch_policy", None) is not None:
                # only accumulator-armed endpoints benefit from keeping
                # the pair's traffic together; plain endpoints keep the
                # router's packing decision unbiased
                self._affinity.remember(user_id, model_id, endpoint)
            if self._pressure_armed() and not pressure_observed:
                if self._observe_pressure(saw_pressure):
                    self._grow_fleet()
            return GatewayReply(output=output, decision=decision, host=host)
        raise RoutingError(
            f"dispatch for {model_id!r} exhausted rerouting in pool "
            f"{self.pool.name!r}"
        )

    def submit(
        self, enc_request: bytes, user_id: str, model_id: str
    ) -> "GatewaySubmission":
        """Admit one encrypted request and return a polling handle.

        The async face of :meth:`dispatch`: the same admission-time
        routing walk (affinity hint, breaker exclusion, ``QueueFull``
        reroute, crash redispatch) runs here, but instead of blocking
        for the output the gateway returns a :class:`GatewaySubmission`
        wrapping the endpoint's :class:`InferenceFuture`.  Rerouting is
        **admission-time only** -- once the request sits in an
        endpoint's queue, a later endpoint death surfaces through the
        future rather than being silently redispatched (the service
        tier owns that retry decision).

        Raises :class:`QueueFull` when the whole fleet is saturated,
        exactly like :meth:`dispatch`.
        """
        handle, endpoint, decision, host, breaker = self._admit(
            user_id,
            model_id,
            lambda host: host.submit(enc_request, user_id, model_id),
            phase="admit",
        )
        return GatewaySubmission(
            self, handle, endpoint, model_id, decision, host, breaker
        )

    def open_stream(
        self, enc_request: bytes, user_id: str, model_id: str
    ) -> "GatewayStream":
        """Admit one autoregressive stream and return its frame handle.

        The streaming face of :meth:`submit`: the identical admission
        walk routes the sealed prompt, and the affinity hint doubles as
        **stream-affinity routing** -- later streams for the same
        ``<uid, model_id>`` pair are offered to the endpoint already
        decoding that pair, which is what lets the endpoint's continuous
        batcher merge them into its running group.  Rerouting is
        admission-time only; once decoding starts, a mid-stream endpoint
        death surfaces through the stream's iterator.
        """
        handle, endpoint, decision, host, breaker = self._admit(
            user_id,
            model_id,
            lambda host: host.open_stream(enc_request, user_id, model_id),
            phase="stream",
        )
        return GatewayStream(
            self, handle, endpoint, model_id, decision, host, breaker
        )

    def _admit(self, user_id: str, model_id: str, admit, phase: str):
        """The shared admission-time routing walk of submit/open_stream.

        ``admit(host)`` performs the endpoint-local admission (enqueue a
        future or open a stream) and its result is returned along with
        the routing decision.  Raises :class:`QueueFull` when the whole
        fleet is saturated.
        """
        exclude: Set[str] = set()
        decision = RouteDecision(endpoint="")
        pressure_observed = False
        warm_hint_tried = False
        grew_for_empty = False
        last_queue_full: Optional[QueueFull] = None
        affinity_hint = self._affinity.lookup(user_id, model_id)
        for _ in range(4 * (self.config.max_redispatch + self.pool.endpoint_count + 2)):
            decision.batch_affinity = False
            decision.warm_hint = False
            endpoint = None
            if affinity_hint is not None:
                hinted, affinity_hint = affinity_hint, None
                if hinted not in exclude and any(
                    name == hinted for name, _ in self.router.endpoints()
                ):
                    endpoint = hinted
                    decision.batch_affinity = True
            if endpoint is None and not warm_hint_tried:
                warm_hint_tried = True
                warm = self._warm_suggestion(model_id, exclude)
                if warm is not None:
                    endpoint = warm
                    decision.warm_hint = True
            try:
                if endpoint is None:
                    endpoint = self.router.route(
                        model_id, self._now(), frozenset(exclude)
                    )
            except RoutingError:
                if last_queue_full is not None:
                    grew = False
                    if self._pressure_armed() and not pressure_observed:
                        pressure_observed = True
                        if self._observe_pressure(True):
                            grew = self._grow_fleet()
                    if grew:
                        last_queue_full = None
                        continue
                    raise last_queue_full
                endpoint = self._relaunch_candidate(exclude)
                if endpoint is None:
                    if (
                        self.warm_pool is not None
                        and not grew_for_empty
                        and not exclude
                        and self._grow_fleet()
                    ):
                        grew_for_empty = True
                        continue
                    raise
            breaker = self._breaker(endpoint)
            if breaker is not None and breaker.state == "open":
                exclude.add(endpoint)
                decision.reroutes += 1
                continue
            try:
                host, cold, launch_s = self._ensure_host(endpoint, exclude)
            except _Reroute:
                decision.reroutes += 1
                continue
            decision.endpoint = endpoint
            decision.cold = cold
            decision.cold_start_s = launch_s
            try:
                handle = admit(host)
            except QueueFull as exc:
                last_queue_full = exc
                exclude.add(endpoint)
                decision.reroutes += 1
                continue
            except (EnclaveError, TransportError) as exc:
                self._note_endpoint_death(endpoint, breaker)
                if (
                    self.config.redispatch_on_crash
                    and decision.redispatches < self.config.max_redispatch
                ):
                    decision.redispatches += 1
                    exclude.add(endpoint)
                    continue
                raise exc
            now = self._now()
            self.router.on_dispatch(endpoint, model_id, now)
            if self.warm_pool is not None:
                decision.temperature = self.warm_pool.on_dispatch(
                    endpoint, model_id, now, launched=cold
                )
            with self._lock:
                self._in_flight += 1
            decision.exclusive = self._is_exclusive(endpoint, model_id)
            with maybe_span(
                self.tracer,
                "route",
                endpoint=endpoint,
                model_id=model_id,
                exclusive=decision.exclusive,
                reroutes=decision.reroutes,
                redispatches=decision.redispatches,
                cold=decision.cold,
                cold_start_s=decision.cold_start_s,
                temperature=decision.temperature,
                batch_affinity=decision.batch_affinity,
                warm_hint=decision.warm_hint,
                phase=phase,
            ):
                pass  # admission-time decision span; serving runs async
            if getattr(host, "batch_policy", None) is not None:
                # remember at *admission*: followers submitted while this
                # request is still queued are exactly the ones the
                # accumulator can merge with it -- and for streams, the
                # ones its continuous batcher can absorb mid-decode
                self._affinity.remember(user_id, model_id, endpoint)
            return handle, endpoint, decision, host, breaker
        raise RoutingError(
            f"{phase} for {model_id!r} exhausted rerouting in pool "
            f"{self.pool.name!r}"
        )

    def _finish(self, endpoint: str, model_id: str, ok: bool) -> None:
        now = self._now()
        if ok:
            self.router.on_complete(endpoint, model_id, now)
            if self.warm_pool is not None:
                self.warm_pool.on_complete(endpoint, model_id, now)
        else:
            self.router.on_failure(endpoint, model_id, now)
            if self.warm_pool is not None:
                self.warm_pool.on_failure(endpoint, model_id, now)
        with self._lock:
            self._in_flight -= 1
            self._idle.notify_all()

    def _is_exclusive(self, endpoint: str, model_id: str) -> bool:
        if isinstance(self.router, FnPackerRouter):
            return self.router.exclusive_assignments().get(endpoint) == model_id
        return False

    # -- endpoint hosts ----------------------------------------------------------

    def ensure_host(self, endpoint: Optional[str] = None) -> Tuple[SemirtHost, bool]:
        """The live host for ``endpoint`` (default: the sole/first one).

        Launches it cold when missing or dead; returns ``(host, cold)``.
        This is the direct-access path ``UserSession.infer_many`` uses
        to pipeline a batch onto one endpoint's TCS-slot scheduler.
        """
        if endpoint is None:
            endpoint = self.router.endpoints()[0][0]
        with self._lock:
            host = self._hosts.get(endpoint)
        if host is not None and host.enclave.alive:
            return host, False
        host, cold, _ = self._launch(endpoint)
        return host, cold

    def _ensure_host(
        self, endpoint: str, exclude: Set[str]
    ) -> Tuple[SemirtHost, bool, float]:
        """The live host for ``endpoint``, launching it cold if needed.

        Returns ``(host, cold, launch_seconds)``.  If the bound host
        died and a healthy peer remains, the endpoint is marked down
        and the request rerouted (raises ``_Reroute``); as a last
        resort the endpoint is relaunched in place.
        """
        with self._lock:
            host = self._hosts.get(endpoint)
        if host is not None and host.enclave.alive:
            return host, False, 0.0
        if host is not None:
            # bound host is dead: prefer rerouting over an in-request
            # relaunch when any other endpoint could take the traffic.
            if self._has_alternative(endpoint, exclude):
                self._note_endpoint_death(endpoint, self._breaker(endpoint))
                exclude.add(endpoint)
                raise _Reroute()
        return self._launch(endpoint)

    def _launch(
        self, endpoint: str, prewarmed: bool = False
    ) -> Tuple[SemirtHost, bool, float]:
        with self._launch_lock:
            with self._lock:
                host = self._hosts.get(endpoint)
            if host is not None and host.enclave.alive:
                return host, False, 0.0  # a concurrent request already launched it
            started = time.perf_counter()
            host = self._launcher(endpoint)
            launch_s = time.perf_counter() - started
            with self._lock:
                self._hosts[endpoint] = host
                self._owned.add(endpoint)
            self.router.mark_endpoint_up(endpoint)
            if self.warm_pool is not None:
                self.warm_pool.on_launch(
                    endpoint,
                    self._now(),
                    cold_start_s=launch_s,
                    prewarmed=prewarmed,
                )
            return host, True, launch_s

    def _has_alternative(self, endpoint: str, exclude: Set[str]) -> bool:
        for name, _ in self.router.endpoints():
            if name != endpoint and name not in exclude:
                host = self._hosts.get(name)
                if host is None or host.enclave.alive:
                    return True
        return False

    def _relaunch_candidate(self, exclude: Set[str]) -> Optional[str]:
        """An endpoint worth relaunching when routing found none usable."""
        for name, _ in self.router.endpoints():
            if name in exclude:
                continue
            host = self._hosts.get(name)
            if host is None or not host.enclave.alive:
                return name
        return None

    def _note_endpoint_death(
        self, endpoint: str, breaker: Optional[CircuitBreaker]
    ) -> None:
        self.router.mark_endpoint_down(endpoint)
        self._affinity.forget_endpoint(endpoint)
        if self.warm_pool is not None:
            self.warm_pool.on_down(endpoint, self._now())
        if breaker is not None:
            breaker.on_failure()

    # -- scale-out ----------------------------------------------------------------

    def _grow_fleet(self) -> bool:
        try:
            endpoint, _ = self.router.add_endpoint()
        except RoutingError:
            return False  # baseline routers have a fixed layout
        if self.tracer is not None:
            with self.tracer.span("scale_out", endpoint=endpoint):
                pass
        return True

    # -- drain / retire ------------------------------------------------------------

    def drain(self, endpoint: str) -> None:
        """Stop routing new requests to ``endpoint``; in-flight finishes."""
        self.router.begin_drain(endpoint)

    def retire(
        self, endpoint: str, timeout_s: float = 30.0, *, reason: str = "manual"
    ) -> None:
        """Drain ``endpoint``, wait for its work, and tear it down."""
        self.drain(endpoint)
        with self._idle:
            self._idle.wait_for(
                lambda: self._endpoint_pending(endpoint) == 0, timeout=timeout_s
            )
        self.router.retire_endpoint(endpoint)
        self._affinity.forget_endpoint(endpoint)
        with self._lock:
            host = self._hosts.pop(endpoint, None)
            owned = endpoint in self._owned
            self._owned.discard(endpoint)
        if self.warm_pool is not None:
            self.warm_pool.on_retire(endpoint, self._now(), reason=reason)
        if host is not None and owned and host.enclave.alive:
            host.destroy()

    # -- warm-pool housekeeping ------------------------------------------------------

    def maintain(
        self, now: Optional[float] = None, retire_timeout_s: float = 5.0
    ) -> Dict[str, List[str]]:
        """One warm-pool housekeeping pass: janitor sweep + pre-warming.

        Call it periodically (the service tier's sweeper does).  The
        janitor's nominations are retired through the ordinary
        drain-then-retire lifecycle; the pre-warmer launches ahead of
        predicted demand, growing the fleet up to the warm pool's
        ``max_endpoints`` when every known endpoint is already live.
        A no-op unless ``GatewayConfig.warm_pool`` is armed.
        """
        result: Dict[str, List[str]] = {"retired": [], "prewarmed": []}
        if self.warm_pool is None:
            return result
        if now is None:
            now = self._now()
        if self.warm_pool.sweep_due(now):
            for victim in self.warm_pool.sweep(now):
                with self._lock:
                    owned = victim in self._owned
                if not owned:
                    continue  # attached/shared hosts are never ours to kill
                try:
                    self.retire(victim, timeout_s=retire_timeout_s, reason="janitor")
                except RoutingError:
                    # traffic landed between nomination and drain; the
                    # endpoint stays draining and a later sweep retries
                    continue
                result["retired"].append(victim)
        for _ in range(self.warm_pool.prewarm_count(now)):
            endpoint = self._prewarm_target()
            if endpoint is None:
                break
            self._launch(endpoint, prewarmed=True)
            result["prewarmed"].append(endpoint)
        return result

    def _prewarm_target(self) -> Optional[str]:
        """An endpoint slot a pre-warm launch can fill, if any.

        Prefers re-warming a known endpoint without a live host; grows
        the fleet only below the warm pool's ``max_endpoints``.
        """
        for name, _ in self.router.endpoints():
            host = self.host(name)
            if host is None or not host.enclave.alive:
                return name
        if (
            self.warm_pool is not None
            and self.endpoint_count < self.warm_pool.config.max_endpoints
        ):
            try:
                endpoint, _ = self.router.add_endpoint()
            except RoutingError:
                return None
            return endpoint
        return None

    def warm_stats(self) -> Optional[dict]:
        """The warm pool's stats section (``None`` when not armed)."""
        if self.warm_pool is None:
            return None
        return self.warm_pool.stats(self._now())

    def _endpoint_pending(self, endpoint: str) -> int:
        states = getattr(self.router, "_endpoints", None)
        if states is None or endpoint not in states:
            return 0
        return states[endpoint].pending

    def invalidate_keys(
        self, uid: Optional[str] = None, model_id: Optional[str] = None
    ) -> int:
        """Broadcast a key-memo invalidation to every live endpoint.

        The fleet face of ``EC_INVALIDATE_KEYS``: after an owner
        revokes a grant (or a user re-grants a fresh request key),
        calling this drops the matching memoised provisioning verdicts
        on every live host, so no enclave keeps serving the pair from
        its memo.  Returns how many entries were dropped fleet-wide.
        """
        with self._lock:
            hosts = list(self._hosts.values())
        dropped = 0
        for host in hosts:
            if host.enclave.alive:
                dropped += host.invalidate_keys(uid, model_id)
        return dropped

    def close(self) -> None:
        """Tear down every owned host; attached hosts keep running."""
        with self._lock:
            hosts = dict(self._hosts)
            owned = set(self._owned)
            self._hosts.clear()
            self._owned.clear()
        for endpoint, host in hosts.items():
            if endpoint in owned and host.enclave.alive:
                host.destroy()

    def __enter__(self) -> "InferenceGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class GatewaySubmission:
    """An admitted async request: poll, wait, or cancel.

    Returned by :meth:`InferenceGateway.submit`.  Wraps the endpoint's
    :class:`~repro.core.semirt.InferenceFuture` and settles the
    gateway's routing state (in-flight count, router completion,
    breaker, endpoint-death marking) **exactly once**, whichever of
    :meth:`result` / :meth:`cancel` resolves it first -- so the async
    surface keeps the same fleet accounting as the blocking one.
    """

    def __init__(
        self,
        gateway: InferenceGateway,
        future: InferenceFuture,
        endpoint: str,
        model_id: str,
        decision: RouteDecision,
        host: SemirtHost,
        breaker: Optional[CircuitBreaker],
    ) -> None:
        self._gateway = gateway
        self.future = future
        self.endpoint = endpoint
        self.model_id = model_id
        self.decision = decision
        self.host = host
        self._breaker = breaker
        self._settled = False
        self._settle_lock = threading.Lock()

    @property
    def ticket(self) -> Optional[int]:
        """The endpoint-assigned observability id (service request ids)."""
        return self.future.ticket

    def done(self) -> bool:
        """True once the outcome is sealed (successfully or not)."""
        return self.future.done()

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the outcome is sealed; ``False`` on timeout.

        Non-consuming (see :meth:`InferenceFuture.wait`): settle still
        happens in :meth:`result`/:meth:`cancel`.
        """
        return self.future.wait(timeout_s)

    def cancelled(self) -> bool:
        """True when cancellation was requested and won."""
        return self.future.cancelled()

    def cancel(self) -> bool:
        """Cancel the request; ``False`` once the outcome is sealed.

        On ``True`` the endpoint scheduler guarantees the request's
        enclave execution context is released (``EC_CLEAR_EXEC_CTX``)
        before :class:`~repro.errors.RequestCancelled` surfaces from
        :meth:`result`.  A cancel is not an endpoint failure: the
        router sees a completion and the breaker is left untouched.
        """
        ok = self.future.cancel()
        if ok:
            self._settle(ok=True, touch_breaker=False)
        return ok

    def result(self, timeout_s: Optional[float] = None) -> bytes:
        """Block for the sealed output; re-raises the serving failure.

        A ``timeout_s`` expiry raises
        :class:`~repro.errors.DeadlineExceeded` *without* settling the
        submission -- the request is still in flight and can be polled
        again or cancelled (the repo-wide wait rule, docs/service.md).
        """
        try:
            output = self.future.result(timeout_s)
        except RequestCancelled:
            self._settle(ok=True, touch_breaker=False)
            raise
        except DeadlineExceeded:
            if not self.future.done():
                raise  # poll timeout: still in flight, nothing settles
            self._settle(ok=False)
            raise
        except Exception:
            self._settle(ok=False)
            raise
        self._settle(ok=True)
        return output

    def _settle(self, ok: bool, touch_breaker: bool = True) -> None:
        with self._settle_lock:
            if self._settled:
                return
            self._settled = True
        gateway = self._gateway
        gateway._finish(self.endpoint, self.model_id, ok=ok)
        if not touch_breaker:
            return
        if ok:
            if self._breaker is not None:
                self._breaker.on_success()
        elif not self.host.enclave.alive:
            gateway._note_endpoint_death(self.endpoint, self._breaker)
        elif self._breaker is not None:
            self._breaker.on_failure()


class GatewayStream:
    """An admitted autoregressive stream: iterate frames, wait, or cancel.

    Returned by :meth:`InferenceGateway.open_stream`.  Wraps the
    endpoint's :class:`~repro.core.semirt.InferenceStream` and settles
    the gateway's routing state exactly once, the same accounting rule
    as :class:`GatewaySubmission`: whichever of iterator exhaustion /
    :meth:`result` / :meth:`cancel` resolves the stream first marks the
    dispatch complete (or the endpoint dead).  Satisfies the
    :class:`~repro.core.futures.Future` protocol -- ``result()`` blocks
    for the full sealed frame sequence.
    """

    def __init__(
        self,
        gateway: InferenceGateway,
        stream: InferenceStream,
        endpoint: str,
        model_id: str,
        decision: RouteDecision,
        host: SemirtHost,
        breaker: Optional[CircuitBreaker],
    ) -> None:
        self._gateway = gateway
        self.stream = stream
        self.endpoint = endpoint
        self.model_id = model_id
        self.decision = decision
        self.host = host
        self._breaker = breaker
        self._settled = False
        self._settle_lock = threading.Lock()

    @property
    def ticket(self) -> Optional[int]:
        """The endpoint-assigned observability id (service request ids)."""
        return self.stream.ticket

    @property
    def ttft_s(self) -> Optional[float]:
        """Admission-to-first-frame latency, once the first frame landed."""
        return self.stream.ttft_s

    @property
    def tokens_per_s(self) -> Optional[float]:
        """Decode throughput over the frames delivered so far."""
        return self.stream.tokens_per_s

    @property
    def token_count(self) -> int:
        return self.stream.token_count

    def done(self) -> bool:
        """True once the stream is terminal (finished, failed, cancelled)."""
        return self.stream.done()

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the stream is terminal; ``False`` on timeout."""
        return self.stream.wait(timeout_s)

    def cancelled(self) -> bool:
        """True when cancellation was requested and won."""
        return self.stream.cancelled()

    def cancel(self) -> bool:
        """Cancel the stream; ``False`` once it is already terminal.

        The endpoint's continuous batcher drops the member at the next
        decode step and closes its enclave stream context
        (``EC_STREAM_CLOSE``), releasing the KV cache.  A cancel is not
        an endpoint failure: the router sees a completion and the
        breaker is left untouched.
        """
        ok = self.stream.cancel()
        if ok:
            self._settle(ok=True, touch_breaker=False)
        return ok

    def __iter__(self):
        """Yield sealed token frames as the endpoint decodes them.

        Exhaustion settles the dispatch as a success; a mid-stream
        failure settles it as an endpoint failure and re-raises.
        """
        frames = iter(self.stream)
        while True:
            try:
                frame = next(frames)
            except StopIteration:
                self._settle(ok=True)
                return
            except RequestCancelled:
                self._settle(ok=True, touch_breaker=False)
                raise
            except Exception:
                self._settle(ok=False)
                raise
            yield frame

    def result(self, timeout_s: Optional[float] = None) -> List[bytes]:
        """Block for the full frame sequence; re-raises the failure.

        A ``timeout_s`` expiry raises
        :class:`~repro.errors.DeadlineExceeded` *without* settling --
        the stream is still decoding and can be polled again or
        cancelled (the repo-wide wait rule, docs/service.md).
        """
        try:
            frames = self.stream.result(timeout_s)
        except RequestCancelled:
            self._settle(ok=True, touch_breaker=False)
            raise
        except DeadlineExceeded:
            if not self.stream.done():
                raise  # poll timeout: still decoding, nothing settles
            self._settle(ok=False)
            raise
        except Exception:
            self._settle(ok=False)
            raise
        self._settle(ok=True)
        return frames

    def _settle(self, ok: bool, touch_breaker: bool = True) -> None:
        with self._settle_lock:
            if self._settled:
                return
            self._settled = True
        gateway = self._gateway
        gateway._finish(self.endpoint, self.model_id, ok=ok)
        if not touch_breaker:
            return
        if ok:
            if self._breaker is not None:
                self._breaker.on_success()
        elif not self.host.enclave.alive:
            gateway._note_endpoint_death(self.endpoint, self._breaker)
        elif self._breaker is not None:
            self._breaker.on_failure()


class _Reroute(Exception):
    """Internal: the chosen endpoint is unusable, pick another."""


__all__ = [
    "GatewayConfig",
    "GatewayReply",
    "GatewayStream",
    "GatewaySubmission",
    "HostLauncher",
    "InferenceGateway",
    "RouteDecision",
]
