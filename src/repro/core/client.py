"""Model-owner and model-user clients.

Clients hold long-term identity keys, attest KeyService before trusting
it (checking ``E_K`` they derived independently), and perform the
workflow of Section III: register, upload encrypted models, grant
access, release request keys, and finally encrypt requests / decrypt
responses end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import wire
from repro.core.semirt import FRAME_AAD, REQUEST_AAD, RESPONSE_AAD, STREAM_AAD
from repro.crypto.gcm import AESGCM, SessionCipher, evict_session
from repro.crypto.keys import SymmetricKey
from repro.errors import AccessDenied, InvocationError, SeSeMIError
from repro.faults.injector import maybe_wire
from repro.mlrt.model import Model
from repro.obs.tracer import maybe_span
from repro.sgx.attestation import AttestationService, QuotePolicy
from repro.sgx.measurement import EnclaveMeasurement
from repro.sgx.ratls import HandshakeOffer, RatlsPeer, complete_handshake


class KeyServiceConnection:
    """An RA-TLS session from a (non-enclave) client to KeyService.

    The client verifies the KeyService quote against the expected ``E_K``
    before any secret crosses the channel.
    """

    def __init__(
        self,
        host,
        attestation: AttestationService,
        expected_measurement: EnclaveMeasurement,
        name: str = "client",
        *,
        tracer=None,
        injector=None,
    ) -> None:
        self._tracer = tracer
        #: optional repro.faults.FaultInjector wrapping this connection's wire
        self._injector = injector
        with maybe_span(
            tracer, "ratls_handshake", client=name, peer="keyservice"
        ):
            peer = RatlsPeer(name)
            offer = peer.offer()
            reply = host.handshake(offer.to_wire())
            server_offer = HandshakeOffer.from_wire(reply["server_offer"])
            self._channel = complete_handshake(
                peer,
                offer,
                server_offer,
                verifier=attestation,
                client_requires=QuotePolicy(expected_mrenclave=expected_measurement),
            )
        self._channel_id = reply["channel_id"]
        self._host = host

    def call(self, message: dict) -> dict:
        """One encrypted request/response round trip (over a faulty wire)."""
        ciphertext = self._channel.send(wire.dumps(message))
        ciphertext = maybe_wire(self._injector, "client->keyservice", ciphertext)
        reply_cipher = self._host.request(self._channel_id, ciphertext)
        reply_cipher = maybe_wire(self._injector, "keyservice->client", reply_cipher)
        return wire.loads(self._channel.recv(reply_cipher))

    def call_checked(self, message: dict) -> dict:
        """Like :meth:`call` but raises :class:`AccessDenied` on refusal."""
        reply = self.call(message)
        if not reply.get("ok"):
            raise AccessDenied(reply.get("error", "operation refused"))
        return reply


class _Principal:
    """Shared owner/user behaviour: identity key + registration.

    ``identity_key`` defaults to a fresh random key; deterministic
    harnesses (chaos runs gated on byte-identical numbers) pass a fixed
    one so the principal's id -- and hence its KeyService shard
    placement -- is stable across runs.
    """

    def __init__(
        self,
        name: str,
        *,
        tracer=None,
        identity_key: Optional[SymmetricKey] = None,
    ) -> None:
        self.name = name
        self.identity_key = identity_key or SymmetricKey.generate()
        self._connection: Optional[KeyServiceConnection] = None
        self.principal_id: Optional[str] = None
        #: optional :class:`~repro.obs.tracer.Tracer` for client-side spans
        self.tracer = tracer

    @property
    def connection(self) -> KeyServiceConnection:
        if self._connection is None:
            raise SeSeMIError(f"{self.name} is not connected to KeyService")
        return self._connection

    def connect(
        self,
        keyservice_host,
        attestation: AttestationService,
        expected_measurement: EnclaveMeasurement,
        *,
        injector=None,
    ) -> None:
        """Attest KeyService and open a secure channel."""
        self._connection = KeyServiceConnection(
            keyservice_host,
            attestation,
            expected_measurement,
            name=self.name,
            tracer=self.tracer,
            injector=injector,
        )

    def register(self) -> str:
        """USER_REGISTRATION: send the identity key, learn our id."""
        reply = self.connection.call_checked(
            {"op": "register", "identity_key": bytes(self.identity_key)}
        )
        expected = self.identity_key.fingerprint
        if reply["id"] != expected:
            raise SeSeMIError("KeyService returned an inconsistent identity")
        self.principal_id = reply["id"]
        return self.principal_id

    def _sealed(self, op: str, payload: dict) -> bytes:
        """Seal an operation payload under our long-term key (AAD = op)."""
        # control-plane ops stay on canonical JSON (debuggable, and the
        # sealed bytes feed deterministic harnesses); the cipher context
        # is derived once per identity key, not rebuilt per call
        return AESGCM.derive(self.identity_key).seal(
            wire.dumps(payload), aad=op.encode()
        )


class OwnerClient(_Principal):
    """The model owner: trains, encrypts, deploys, and grants access."""

    def __init__(
        self,
        name: str = "owner",
        *,
        tracer=None,
        identity_key: Optional[SymmetricKey] = None,
    ) -> None:
        super().__init__(name, tracer=tracer, identity_key=identity_key)
        self._model_keys: Dict[str, SymmetricKey] = {}

    def model_key(self, model_id: str) -> SymmetricKey:
        """The model key generated for ``model_id`` (raises if not deployed)."""
        try:
            return self._model_keys[model_id]
        except KeyError:
            raise SeSeMIError(f"no model key generated for {model_id!r}") from None

    def encrypt_model(self, model: Model, model_id: str) -> bytes:
        """Generate a fresh model key and encrypt the serialised model."""
        old = self._model_keys.get(model_id)
        if old is not None:
            evict_session(old)  # rotation: drop the retired key's context
        key = SymmetricKey.generate()
        self._model_keys[model_id] = key
        return AESGCM.derive(key).seal(model.serialize(), aad=model_id.encode())

    def deploy_model(self, model: Model, model_id: str, storage) -> None:
        """Encrypt and upload the model artifact (workflow step 2)."""
        storage.put(f"models/{model_id}", self.encrypt_model(model, model_id))

    def add_model_key(self, model_id: str) -> None:
        """ADD_MODEL_KEY: hand the model key to KeyService, authenticated."""
        blob = self._sealed(
            "add_model_key",
            {"model_id": model_id, "model_key": bytes(self.model_key(model_id))},
        )
        self.connection.call_checked(
            {"op": "add_model_key", "oid": self.principal_id, "blob": blob}
        )

    def rotate_model_key(self, model_id: str, model: Model, storage) -> None:
        """Re-key a deployed model (extension: periodic key rotation).

        Generates a fresh model key, re-encrypts and re-uploads the
        artifact, and replaces the key in KeyService.  Enclaves holding
        the *old* key cannot decrypt the new artifact: their next model
        load fails authentication, forcing a fresh key fetch -- stale
        keys age out without any push mechanism.
        """
        self.deploy_model(model, model_id, storage)  # fresh key + upload
        self.add_model_key(model_id)

    def grant_access(
        self, model_id: str, enclave: EnclaveMeasurement, uid: str
    ) -> None:
        """GRANT_ACCESS: allow enclave ``E_S`` to serve ``model_id`` to ``uid``."""
        blob = self._sealed(
            "grant_access",
            {"model_id": model_id, "enclave_id": enclave.value, "uid": uid},
        )
        self.connection.call_checked(
            {"op": "grant_access", "oid": self.principal_id, "blob": blob}
        )

    def revoke_access(
        self, model_id: str, enclave: EnclaveMeasurement, uid: str
    ) -> None:
        """REVOKE_ACCESS (extension): withdraw a previous grant."""
        blob = self._sealed(
            "revoke_access",
            {"model_id": model_id, "enclave_id": enclave.value, "uid": uid},
        )
        self.connection.call_checked(
            {"op": "revoke_access", "oid": self.principal_id, "blob": blob}
        )


class UserClient(_Principal):
    """The model user: releases request keys and runs encrypted inference."""

    def __init__(
        self,
        name: str = "user",
        *,
        tracer=None,
        identity_key: Optional[SymmetricKey] = None,
    ) -> None:
        super().__init__(name, tracer=tracer, identity_key=identity_key)
        self._request_keys: Dict[Tuple[str, str], SymmetricKey] = {}
        #: per-(model, enclave) derived request ciphers -- the client half
        #: of the session key cache (shared by UserSession/RemoteSession)
        self._request_ciphers: Dict[Tuple[str, str], SessionCipher] = {}

    def request_key(self, model_id: str, enclave: EnclaveMeasurement) -> SymmetricKey:
        """The request key for ``(model, enclave)``; generated on first use."""
        slot = (model_id, enclave.value)
        key = self._request_keys.get(slot)
        if key is None:
            key = SymmetricKey.generate()
            self._request_keys[slot] = key
        return key

    def reset_request_key(
        self, model_id: str, enclave: EnclaveMeasurement
    ) -> None:
        """Forget the request key for ``(model, enclave)``.

        The re-grant invalidation hook: the next :meth:`request_key`
        generates a fresh key, the derived session cipher is dropped
        here, and enclaves holding the old key self-heal by refetching
        when the first request under the new key fails to authenticate.
        """
        slot = (model_id, enclave.value)
        key = self._request_keys.pop(slot, None)
        self._request_ciphers.pop(slot, None)
        if key is not None:
            evict_session(key)

    def _request_cipher(
        self, model_id: str, enclave: EnclaveMeasurement
    ) -> SessionCipher:
        """The cached session cipher for ``(model, enclave)``.

        Derived once per request key and reused across the hot session;
        rebuilding GHASH tables per request was the dominant client-side
        crypto cost (see docs/performance.md).
        """
        slot = (model_id, enclave.value)
        cipher = self._request_ciphers.get(slot)
        if cipher is None:
            cipher = AESGCM.derive(self.request_key(model_id, enclave))
            self._request_ciphers[slot] = cipher
        return cipher

    def add_request_key(self, model_id: str, enclave: EnclaveMeasurement) -> None:
        """ADD_REQ_KEY: release the request key for one enclave identity."""
        key = self.request_key(model_id, enclave)
        blob = self._sealed(
            "add_req_key",
            {
                "model_id": model_id,
                "enclave_id": enclave.value,
                "request_key": bytes(key),
            },
        )
        self.connection.call_checked(
            {"op": "add_req_key", "uid": self.principal_id, "blob": blob}
        )

    def encrypt_request(
        self, model_id: str, enclave: EnclaveMeasurement, x: np.ndarray
    ) -> bytes:
        """Encrypt an input tensor for ``model_id`` under the request key."""
        with maybe_span(self.tracer, "encrypt_request", model_id=model_id):
            payload = wire.dumps(
                {"input": x.astype(np.float32).tobytes()}, codec=wire.BINARY
            )
            return self._request_cipher(model_id, enclave).seal(
                payload, aad=REQUEST_AAD + model_id.encode()
            )

    def encrypt_stream_request(
        self,
        model_id: str,
        enclave: EnclaveMeasurement,
        prompt,
        max_new_tokens: int,
    ) -> bytes:
        """Encrypt a streaming prompt for ``EC_MODEL_INF_STREAM``.

        ``prompt`` is a sequence of token ids.  The payload is sealed
        under the same request key as one-shot requests but with the
        stream AAD, so a stream request can never be replayed into
        ``EC_MODEL_INF`` (and vice versa).
        """
        with maybe_span(self.tracer, "encrypt_stream_request", model_id=model_id):
            payload = wire.dumps(
                {
                    "prompt": np.asarray(prompt, dtype=np.float32).tobytes(),
                    "max_new_tokens": int(max_new_tokens),
                },
                codec=wire.BINARY,
            )
            return self._request_cipher(model_id, enclave).seal(
                payload, aad=STREAM_AAD + model_id.encode()
            )

    def decrypt_frame(
        self, model_id: str, enclave: EnclaveMeasurement, frame: bytes
    ) -> dict:
        """Authenticate and decrypt one sealed token frame.

        Returns ``{"token": int, "index": int, "done": bool}``; the
        index lets the client detect a host that drops, reorders or
        replays frames.
        """
        with maybe_span(self.tracer, "decrypt_frame", model_id=model_id):
            try:
                return wire.loads(
                    self._request_cipher(model_id, enclave).unseal(
                        frame, aad=FRAME_AAD + model_id.encode()
                    )
                )
            except Exception as exc:
                raise InvocationError(
                    "token frame does not authenticate under the request key"
                ) from exc

    def decrypt_response(
        self, model_id: str, enclave: EnclaveMeasurement, enc_response: bytes
    ) -> np.ndarray:
        """Authenticate and decrypt the inference result."""
        with maybe_span(self.tracer, "decrypt_response", model_id=model_id):
            try:
                payload = wire.loads(
                    self._request_cipher(model_id, enclave).unseal(
                        enc_response, aad=RESPONSE_AAD + model_id.encode()
                    )
                )
            except Exception as exc:
                raise InvocationError(
                    "response does not authenticate under the request key"
                ) from exc
            return np.frombuffer(payload["output"], dtype=np.float32)
