"""Tamper-evident audit log for KeyService (extension).

Delegated-computation systems in the paper's related work (e.g. Data
Station) emphasise *auditability*: the owner should be able to see, after
the fact, exactly which principals and enclaves were given access to
what.  This module adds a hash-chained audit log inside the KeyService
enclave:

- every sensitive operation appends an entry whose hash covers the
  previous entry's hash (a classic hash chain), so the untrusted host
  can store the log but cannot rewrite history undetected;
- entries record *what happened*, never key material;
- owners fetch and verify the chain through their secure channel.

Attach it with :func:`attach_audit_log`, which wraps a
``KeyServiceEnclaveCode`` instance's dispatcher.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List

from repro.crypto.hashes import sha256
from repro.errors import SeSeMIError

GENESIS = "0" * 64

#: operations worth auditing (registration is public, provisioning is key)
AUDITED_OPS = frozenset(
    {"add_model_key", "grant_access", "revoke_access", "add_req_key", "provision"}
)


@dataclass(frozen=True)
class AuditEntry:
    """One immutable audit record."""

    index: int
    op: str
    actor: str            # principal id or enclave identity
    subject: str          # model id (or other object of the operation)
    outcome: str          # "ok" or the refusal reason class
    prev_hash: str

    def entry_hash(self) -> str:
        """SHA-256 over this entry's canonical encoding (chains on prev_hash)."""
        payload = json.dumps(
            {
                "index": self.index,
                "op": self.op,
                "actor": self.actor,
                "subject": self.subject,
                "outcome": self.outcome,
                "prev": self.prev_hash,
            },
            sort_keys=True,
        ).encode()
        return sha256(payload).hex()

    def to_wire(self) -> dict:
        """Wire-friendly dict form of the entry."""
        return {
            "index": self.index,
            "op": self.op,
            "actor": self.actor,
            "subject": self.subject,
            "outcome": self.outcome,
            "prev_hash": self.prev_hash,
        }


class AuditLog:
    """An append-only hash chain of :class:`AuditEntry` records."""

    def __init__(self) -> None:
        self._entries: List[AuditEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head_hash(self) -> str:
        return self._entries[-1].entry_hash() if self._entries else GENESIS

    def append(self, op: str, actor: str, subject: str, outcome: str) -> AuditEntry:
        """Append one entry, chaining it onto the current head."""
        entry = AuditEntry(
            index=len(self._entries),
            op=op,
            actor=actor,
            subject=subject,
            outcome=outcome,
            prev_hash=self.head_hash,
        )
        self._entries.append(entry)
        return entry

    def entries(self) -> List[AuditEntry]:
        """A snapshot copy of all entries, oldest first."""
        return list(self._entries)

    @staticmethod
    def verify_chain(entries: List[AuditEntry]) -> bool:
        """Check the hash chain of an exported log copy."""
        expected_prev = GENESIS
        for index, entry in enumerate(entries):
            if entry.index != index or entry.prev_hash != expected_prev:
                return False
            expected_prev = entry.entry_hash()
        return True


def attach_audit_log(keyservice_code) -> AuditLog:
    """Wrap a KeyService enclave code object with audit recording.

    Returns the :class:`AuditLog` (which lives inside the enclave's
    trust boundary alongside the key stores).  Also registers an
    ``audit`` wire operation so connected owners can fetch the entries.
    """
    if getattr(keyservice_code, "_audit_log", None) is not None:
        raise SeSeMIError("an audit log is already attached")
    log = AuditLog()
    keyservice_code._audit_log = log
    original_dispatch = keyservice_code._dispatch

    def dispatch_with_audit(channel_id: int, message: dict) -> dict:
        op = message.get("op")
        if op == "audit":
            return {
                "ok": True,
                "entries": [e.to_wire() for e in log.entries()],
                "head": log.head_hash,
            }
        reply = original_dispatch(channel_id, message)
        if op in AUDITED_OPS:
            actor = str(message.get("oid") or message.get("uid") or "?")
            if op == "provision":
                report = keyservice_code._channel_peer.get(channel_id)
                actor = report.mrenclave.value if report else "unattested"
            log.append(
                op=op,
                actor=actor,
                subject=str(message.get("model_id", "?")),
                outcome="ok" if reply.get("ok") else "denied",
            )
        return reply

    keyservice_code._dispatch = dispatch_with_audit
    return log


def fetch_audit_entries(connection) -> List[AuditEntry]:
    """Owner-side helper: pull and reconstruct the audit entries."""
    reply = connection.call_checked({"op": "audit"})
    return [
        AuditEntry(
            index=e["index"],
            op=e["op"],
            actor=e["actor"],
            subject=e["subject"],
            outcome=e["outcome"],
            prev_hash=e["prev_hash"],
        )
        for e in reply["entries"]
    ]
