"""Calibrated cost model for the nine serving stages of Figure 4.

Every constant traces to a number the paper publishes; see DESIGN.md
section 6 for the source list.  The model is deliberately centralised so
each experiment reads its latencies from one place and the calibration
can be audited against the paper line by line.

Anchors (SGX2, TVM):

- hot TVM latencies are Table II's "Without" row (exec stage);
- TVM runtime-init is 39.6 / 21.3 / 15.0 % of exec (Section VI-A);
- a cold TVM-MBNET invocation is ~21x its hot latency and a warm one
  ~11x faster than cold, which pins ``enclave_init + key_retrieval``
  at ~1.26 s for a 64 MB enclave -- split between the hardware profile's
  init time and the fixed RA-TLS key-retrieval overhead below;
- decryption bandwidth inside the enclave is set so the warm/hot ratio
  lands at the published 21/11 split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlrt.zoo import ModelProfile
from repro.serverless.storage import StorageProfile
from repro.sgx.platform import HardwareProfile

MB = 1024 * 1024


@dataclass(frozen=True)
class CostModel:
    """Per-stage latency model, parameterised by hardware and storage."""

    hardware: HardwareProfile
    storage: StorageProfile
    #: AES-GCM decrypt throughput inside the enclave (bytes/second)
    decrypt_bandwidth: float = 800 * MB
    #: fixed RA-TLS overhead of key retrieval beyond quote+verify: two
    #: handshake round trips, KeyService processing, channel setup
    key_fetch_fixed_s: float = 0.69
    #: KEY_PROVISIONING over an *established* RA-TLS session (no new
    #: attestation): one encrypted RPC to KeyService.  Calibrated from the
    #: Table II deltas (strong isolation re-fetches keys per request and
    #: pays ~0.15-0.2 s on top of the runtime re-init).
    key_refetch_s: float = 0.15
    #: AEAD on a request/response payload (small, size-independent)
    request_decrypt_s: float = 0.002
    result_encrypt_s: float = 0.002

    # -- per-stage costs ---------------------------------------------------------

    def sandbox_init_s(self, platform_sandbox_init: float) -> float:
        """Sandbox initialisation is a platform property; pass-through."""
        return platform_sandbox_init

    def enclave_init_s(self, enclave_bytes: int, concurrent_launches: int = 1) -> float:
        """Enclave initialisation time for the given size and launch concurrency."""
        return self.hardware.enclave_init_time(enclave_bytes, concurrent_launches)

    def key_retrieval_s(self, concurrent_quotes: int = 1) -> float:
        """Mutual RA-TLS with KeyService + KEY_PROVISIONING round trip."""
        quote = self.hardware.quote_time(concurrent_quotes)
        # mutual attestation: verify the KeyService quote and our own.
        return self.key_fetch_fixed_s + quote + 2 * self.hardware.verify_s

    def key_retrieval_session_reused_s(self) -> float:
        """KEY_PROVISIONING when the RA-TLS session already exists.

        SeMIRT "maintains a secure channel with KeyService after the
        first remote attestation" (Section IV-B), so later fetches --
        user switches, or strong-isolation re-fetches -- skip attestation.
        """
        return self.key_refetch_s

    def model_load_s(self, model_bytes: int) -> float:
        """Download the encrypted artifact from cloud storage."""
        return self.storage.download_time(model_bytes)

    def model_decrypt_s(self, model_bytes: int, epc_slowdown: float = 1.0) -> float:
        """Copy into the enclave + AES-GCM decrypt + deserialise."""
        return (model_bytes / self.decrypt_bandwidth) * epc_slowdown

    def runtime_init_s(self, profile: ModelProfile, framework: str,
                       epc_slowdown: float = 1.0) -> float:
        """Model-runtime initialisation time, stretched under EPC pressure."""
        return profile.runtime_init_s(framework) * epc_slowdown

    def model_exec_s(self, profile: ModelProfile, framework: str,
                     epc_slowdown: float = 1.0) -> float:
        """Model execution time, stretched under EPC pressure."""
        return profile.exec_s(framework) * epc_slowdown

    # -- untrusted comparison paths (Figure 9 / 18) --------------------------------

    def untrusted_exec_s(self, profile: ModelProfile, framework: str) -> float:
        """Model execution outside SGX; same compute, no enclave effects."""
        return profile.exec_s(framework)

    def untrusted_runtime_init_s(self, profile: ModelProfile, framework: str) -> float:
        """Runtime initialisation outside SGX (same work, no enclave effects)."""
        return profile.runtime_init_s(framework)

    def untrusted_model_load_s(self, model_bytes: int) -> float:
        """Load without the in-enclave copy + decrypt."""
        return self.storage.download_time(model_bytes)
