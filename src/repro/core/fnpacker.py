"""Compatibility shim: FnPacker routing now lives in :mod:`repro.routing`.

The router policy classes (Section IV-C) were extracted into the
twin-agnostic ``repro.routing`` package so the simulated Controller and
the functional :class:`~repro.core.gateway.InferenceGateway` share one
routing plane.  This module re-exports the public names so existing
imports keep working; new code should import from ``repro.routing``.
"""

from repro.routing import (
    AllInOneRouter,
    EndpointState,
    FnPackerRouter,
    FnPool,
    OneToOneRouter,
    Router,
)

__all__ = [
    "AllInOneRouter",
    "EndpointState",
    "FnPackerRouter",
    "FnPool",
    "OneToOneRouter",
    "Router",
]
