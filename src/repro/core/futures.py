"""The unified Future protocol for every asynchronous result handle.

Four layers of the stack hand back "a result you can wait on": the TCS
scheduler's ``InferenceFuture``, the session tier's ``SessionFuture``,
the gateway's ``GatewaySubmission`` and the service client's
``RemoteFuture``.  They grew independently and converged on the same
shape; :class:`Future` pins that shape down as a structural protocol so
callers can be written against *one* contract and handed any of them
(``tests/core/test_futures.py`` runs the contract against all four, plus
the streaming handles).

The contract:

- ``result(timeout_s=None)`` blocks for the outcome.  It returns the
  (layer-specific) payload on success, re-raises the failure exception,
  and raises :class:`~repro.errors.DeadlineExceeded` if ``timeout_s``
  elapses first.  Calling it again returns/raises the same outcome.
- ``done()`` is a non-blocking terminal check: ``True`` once the handle
  has a payload, a failure, or a delivered cancellation.
- ``cancel()`` *requests* cancellation and returns whether the request
  was accepted (``False`` once the handle is already terminal).
  Acceptance is best-effort -- work already executing may still
  complete; a cancelled handle's ``result()`` raises
  :class:`~repro.errors.RequestCancelled`.

Streams extend rather than replace the contract:
:class:`~repro.core.semirt.InferenceStream` (and its gateway / session /
remote wrappers) satisfies :class:`Future` -- ``result()`` returns the
full frame sequence -- and additionally iterates frames as they are
decoded.

This is a :func:`typing.runtime_checkable` protocol: ``isinstance(x,
Future)`` checks method presence only, which is exactly the guarantee a
structural type can give.  The semantics above are enforced by the
contract test, not the type system.
"""

from __future__ import annotations

from typing import Any, Optional

try:  # pragma: no cover - typing fallback exercised only on old runtimes
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Future(Protocol):
    """Structural type of every asynchronous result handle (see module docs)."""

    def result(self, timeout_s: Optional[float] = None) -> Any:
        """Block for the outcome; re-raise its failure; honour ``timeout_s``."""
        ...  # pragma: no cover - protocol

    def done(self) -> bool:
        """Non-blocking: has the handle reached a terminal state?"""
        ...  # pragma: no cover - protocol

    def cancel(self) -> bool:
        """Request cancellation; ``False`` if already terminal."""
        ...  # pragma: no cover - protocol


__all__ = ["Future"]
