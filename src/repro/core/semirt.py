"""SeMIRT: the secure model-inference enclave runtime (Algorithm 2).

The enclave exposes the Figure 5 surface -- ``EC_MODEL_INF``,
``EC_GET_OUTPUT``, ``EC_CLEAR_EXEC_CTX``, plus the batched
``EC_MODEL_INF_BATCH`` -- and two OCALLs (``OC_LOAD_MODEL``,
``OC_FREE_LOADED``) plus the quote/network OCALLs every enclave needs.
``EC_MODEL_INF`` returns a *ticket*; the host fetches and releases that
request's output by ticket, so requests running concurrently on
different TCSs never share an output slot.  ``EC_MODEL_INF_BATCH``
serves several requests for one ``<uid, M_oid>`` pair in a single call
-- the same-pair security rule is enforced *inside* the enclave (every
payload must authenticate under that user's request key), each request
still getting its own ticketed execution context.
Cached state drives the cold/warm/hot invocation paths:

- the decrypted **model** lives in the shared enclave heap (one per
  enclave, first thread decrypts under ``_model_lock``, later threads
  reuse);
- ``<uid, M_oid>`` **key pairs** are memoised for the *loaded* model
  (Section IV-B generalised: the paper's single-pair cache is the
  ``key_cache_entries=1`` case; a throughput build keeps one entry per
  hot user, each carrying its derived request cipher, so repeat
  requests skip both the KeyService round trip and the AES-GCM context
  rebuild).  Switching models evicts every entry -- a reload can never
  pair a stale key with a new artifact -- and the KeyService
  re-attestation path (restart, ``EC_RESTORE_STATE``, shard failover)
  flushes the whole cache.  ``EC_INVALIDATE_KEYS`` is the push-side
  hook revocation/re-grant uses;
- the **model runtime** is per-thread (thread-local storage, one per
  TCS -- the host binds one scheduler worker per TCS slot);
- per-request **execution contexts** (the sealed outputs) live in a
  bounded ticket table, at most one per TCS.

The untrusted :class:`SemirtHost` drives the enclave through a TCS-slot
scheduler: a bounded worker pool (one worker per ``tcs_count``) fed by
an admission queue with configurable depth.  ``submit()`` returns an
:class:`InferenceFuture` immediately (or raises
:class:`~repro.errors.QueueFull` as backpressure); ``infer()`` is the
blocking composition the serverless action path uses.  With
``SchedulerConfig(batch=BatchPolicy(...))`` the scheduler additionally
runs a **batch accumulator**: the first hot request for a pair becomes
the leader, waits up to ``batch_window_s`` for followers, and executes
the whole batch through one ``EC_MODEL_INF_BATCH`` (``docs/batching.md``).

Execution-restriction settings -- sequential processing, key-cache off,
runtime cleared per request, pinned model -- are *build settings*: they
change the MRENCLAVE, so KeyService can distinguish a strong-isolation
build from a throughput build (Section V).  The expected KeyService
identity ``E_K`` is likewise compiled in (Appendix A).
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batching import BatchPolicy
from repro.core.stages import InvocationPlan, SemirtCacheState, Stage, plan_invocation
from repro.core import wire
from repro.core.wire import WireError
from repro.crypto.gcm import AESGCM, SessionCipher
from repro.errors import (
    AccessDenied,
    CryptoError,
    DeadlineExceeded,
    EnclaveError,
    FaultInjected,
    InvocationError,
    ModelError,
    QueueFull,
    RequestCancelled,
    TransportError,
)
from repro.faults.injector import maybe_wire
from repro.mlrt.decoder import DecoderSession, greedy
from repro.mlrt.framework import get_framework
from repro.mlrt.model import Model
from repro.obs.tracer import maybe_span
from repro.sgx.attestation import AttestationService, QuotePolicy
from repro.sgx.enclave import Enclave, EnclaveBuildConfig, EnclaveCode, ecall
from repro.sgx.measurement import EnclaveMeasurement, code_identity_of, measure
from repro.sgx.platform import SgxPlatform
from repro.sgx.ratls import HandshakeOffer, RatlsPeer, SecureChannel, complete_handshake

REQUEST_AAD = b"sesemi-request"
RESPONSE_AAD = b"sesemi-response"
# the streaming surface gets its own AAD pair: a sealed stream request
# can never be replayed into EC_MODEL_INF (and vice versa), and a token
# frame can never masquerade as a one-shot response -- cross-protocol
# confusion fails AEAD authentication (docs/streaming.md)
STREAM_AAD = b"sesemi-stream"
FRAME_AAD = b"sesemi-frame"

#: upper bound on tokens one stream may generate; bounds how long a
#: stream context (and its KV cache) can pin enclave heap
MAX_STREAM_TOKENS = 1024


@dataclass(frozen=True)
class IsolationSettings:
    """Execution-restriction build options (Section V).

    The default is the throughput build the main experiments use; the
    strong-isolation build of Table II flips all of them.
    """

    sequential: bool = False       # single TCS, no concurrent requests
    key_cache: bool = True         # cache the last <uid, M_oid> key pair
    reuse_runtime: bool = True     # keep the model runtime across requests
    clear_context: bool = False    # wipe per-request state after each reply
    pinned_model: Optional[str] = None  # refuse any other model id

    @classmethod
    def strong(cls, pinned_model: Optional[str] = None) -> "IsolationSettings":
        """The strong-isolation configuration measured in Table II."""
        return cls(
            sequential=True,
            key_cache=False,
            reuse_runtime=False,
            clear_context=True,
            pinned_model=pinned_model,
        )

    def as_mapping(self) -> dict:
        """JSON-friendly form folded into the enclave measurement."""
        return {
            "sequential": self.sequential,
            "key_cache": self.key_cache,
            "reuse_runtime": self.reuse_runtime,
            "clear_context": self.clear_context,
            "pinned_model": self.pinned_model,
        }


@dataclass(frozen=True)
class SchedulerConfig:
    """Host-side TCS scheduler knobs (NOT part of the enclave identity).

    ``queue_depth`` bounds the admission queue; a :meth:`SemirtHost.submit`
    beyond it raises :class:`~repro.errors.QueueFull`.  ``paced_service_s``,
    when set, paces every ``EC_MODEL_INF`` cycle to a per-request
    service-time floor: the worker sleeps out the remainder of the floor
    inside the ECALL span.  It models the on-hardware execution time the
    functional twin does not have (cf. ``docs/calibration.md``) -- the
    sleep releases the GIL, so paced requests genuinely overlap across
    TCS slots the way SGX threads do on real cores.  ``None`` (the
    default) leaves requests entirely compute-bound.

    ``paced_busy`` changes *how* the floor is spent: instead of a
    GIL-releasing sleep (the overlap regime above), the worker holds the
    CPU for the remainder -- modelling the **compute-bound** regime
    where the node has fewer cores than TCS threads, which is exactly
    where micro-batching pays (cf. Figure 11a).  ``batch`` arms the
    scheduler's hot-path batch accumulator with a
    :class:`~repro.core.batching.BatchPolicy`; like every field here it
    is host policy, excluded from ``settings()``/MRENCLAVE.
    """

    queue_depth: int = 16
    paced_service_s: Optional[float] = None
    batch: Optional[BatchPolicy] = None
    paced_busy: bool = False
    #: how many <uid, M_oid> key entries the enclave memoises for the
    #: loaded model.  1 reproduces the paper's single-pair cache; the
    #: default keeps one entry per hot user so alternating users stop
    #: paying a KeyService round trip each.  Host *sizing* policy, like
    #: queue_depth -- whether keys may be cached at all stays the
    #: measured IsolationSettings.key_cache bit.
    key_cache_entries: int = 32

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise EnclaveError("the admission queue needs a depth of at least 1")
        if self.key_cache_entries < 1:
            raise EnclaveError("key_cache_entries needs room for at least 1 entry")
        if self.paced_service_s is not None and self.paced_service_s < 0:
            raise EnclaveError("paced_service_s cannot be negative")
        if self.batch is not None and not isinstance(self.batch, BatchPolicy):
            raise EnclaveError("batch must be a repro.core.batching.BatchPolicy")


def default_semirt_config(tcs_count: int = 1,
                          memory_bytes: int = 64 * 1024 * 1024) -> EnclaveBuildConfig:
    """A build config sized for small functional models."""
    return EnclaveBuildConfig(memory_bytes=memory_bytes, tcs_count=tcs_count)


def expected_semirt_measurement(
    framework: str,
    keyservice_measurement: EnclaveMeasurement,
    config: EnclaveBuildConfig,
    isolation: Optional[IsolationSettings] = None,
) -> EnclaveMeasurement:
    """Derive ``E_S`` independently from code + build settings.

    Model owners and users compute this before granting access; the model
    content is *not* part of the identity (Appendix B).
    """
    isolation = isolation if isolation is not None else IsolationSettings()
    build_view = dict(config.as_mapping())
    build_view["settings"] = _semirt_settings(
        framework, keyservice_measurement, isolation
    )
    return measure(code_identity_of(SemirtEnclaveCode), build_view)


def _semirt_settings(
    framework: str,
    keyservice_measurement: EnclaveMeasurement,
    isolation: IsolationSettings,
) -> dict:
    return {
        "runtime": "semirt",
        "framework": framework,
        "keyservice_mrenclave": keyservice_measurement.value,
        "isolation": isolation.as_mapping(),
    }


class _KeyCacheEntry:
    """One memoised ``<uid, M_oid>`` provisioning verdict (trusted heap).

    Holding an entry *is* the cached "KeyService authorised this pair"
    verdict: it carries the two keys plus the request cipher derived
    once (AES key schedule + GHASH tables), so a hot request reuses the
    whole sealed context instead of rebuilding it per ECALL.
    """

    __slots__ = ("uid", "model_id", "model_key", "request_key", "cipher")

    def __init__(
        self, uid: str, model_id: str, model_key: bytes, request_key: bytes
    ) -> None:
        self.uid = uid
        self.model_id = model_id
        self.model_key = model_key
        self.request_key = request_key
        # derived in-enclave, deliberately NOT through the process-wide
        # AESGCM.derive cache: enclave key state never leaves the enclave
        self.cipher = SessionCipher(AESGCM(request_key))


class _StreamContext:
    """One live autoregressive stream's trusted state (enclave heap).

    The per-ticket streaming sibling of the execution-context table:
    where ``_contexts`` holds one sealed output per one-shot request, a
    stream context holds the :class:`~repro.mlrt.decoder.DecoderSession`
    whose KV caches *are* the stream's enclave-heap footprint, plus the
    user's request cipher captured when the stream authenticated and the
    remaining generation budget.  Released when the budget is spent, by
    ``EC_STREAM_CLOSE`` (the cancel path), or with the enclave itself.
    """

    __slots__ = (
        "uid", "model_id", "decoder", "cipher", "last_token", "index", "remaining"
    )

    def __init__(
        self,
        uid: str,
        model_id: str,
        decoder: DecoderSession,
        cipher: SessionCipher,
        last_token: int,
        remaining: int,
    ) -> None:
        self.uid = uid
        self.model_id = model_id
        self.decoder = decoder
        self.cipher = cipher
        self.last_token = last_token
        #: frames sealed so far (the next frame's index)
        self.index = 0
        #: tokens still allowed after the ones already emitted
        self.remaining = remaining


class SemirtEnclaveCode(EnclaveCode):
    """The trusted half of SeMIRT."""

    def __init__(
        self,
        framework: str,
        attestation: AttestationService,
        keyservice_measurement: EnclaveMeasurement,
        isolation: Optional[IsolationSettings] = None,
        tracer=None,
        key_cache_entries: int = 32,
    ) -> None:
        super().__init__()
        isolation = isolation if isolation is not None else IsolationSettings()
        self._framework = get_framework(framework)
        self._framework_name = framework
        self._attestation = attestation
        self._expected_keyservice = keyservice_measurement
        self._isolation = isolation
        # observability only -- deliberately NOT part of settings(), so
        # tracing never perturbs the enclave measurement E_S
        self.tracer = tracer
        # global (heap) state shared by all TCS threads.  The model is
        # switched under _model_lock (first thread decrypts, later
        # threads reuse); the key-pair memo has its own lock; the
        # KeyService channel is serialised by _ks_lock because the
        # SecureChannel nonce counters are not thread-safe.
        self._model: Optional[Model] = None
        self._model_id: Optional[str] = None
        # the <uid, M_oid> key memo: every entry belongs to the loaded
        # model and carries the keys plus the derived request cipher
        # (the memoised validation verdict -- holding an entry IS the
        # cached "KeyService said yes" for that pair)
        self._kc: "OrderedDict[Tuple[str, str], _KeyCacheEntry]" = OrderedDict()
        self._kc_capacity = max(1, int(key_cache_entries))
        self._ks_session: Optional[Tuple[int, SecureChannel]] = None
        self._model_lock = threading.Lock()
        self._kc_lock = threading.Lock()
        self._ks_lock = threading.Lock()
        # per-request execution contexts: ticket -> sealed output.  The
        # table is bounded by the TCS count -- one pending context per
        # slot -- so a host that never fetches outputs cannot grow the
        # enclave heap.
        self._contexts: Dict[int, bytes] = {}
        self._context_lock = threading.Lock()
        self._tickets = itertools.count(1)
        # thread-local (TCS) state: the model runtime buffers
        self._tls = threading.local()
        #: observability for tests/benchmarks: the last plan taken
        self.last_plan: Optional[InvocationPlan] = None
        #: observability for tests/benchmarks: one (uid, model_id, size)
        #: row per EC_MODEL_INF_BATCH served
        self.batch_log: List[Tuple[str, str, int]] = []
        # per-ticket stream contexts (the streaming sibling of
        # _contexts): each holds a decoder whose KV caches live in the
        # enclave heap until the stream drains or is closed.  Bounded by
        # the TCS count like the execution-context table.
        self._streams: Dict[int, _StreamContext] = {}
        self._stream_lock = threading.Lock()
        #: observability for tests/benchmarks: one (uid, model_id, size)
        #: row per EC_STREAM_STEP served
        self.stream_log: List[Tuple[str, str, int]] = []

    def settings(self) -> dict:
        """Build settings covered by MRENCLAVE (framework, E_K, isolation)."""
        return _semirt_settings(
            self._framework_name, self._expected_keyservice, self._isolation
        )

    @property
    def pending_outputs(self) -> int:
        """Execution contexts awaiting ``EC_GET_OUTPUT``/``EC_CLEAR_EXEC_CTX``."""
        with self._context_lock:
            return len(self._contexts)

    @property
    def open_streams(self) -> int:
        """Live stream contexts (KV caches pinned in the enclave heap)."""
        with self._stream_lock:
            return len(self._streams)

    # -- ECALLs (Figure 5) -----------------------------------------------------------

    @ecall
    def EC_MODEL_INF(self, enc_request: bytes, uid: str, model_id: str) -> int:
        """Run inference on ``uid``'s encrypted input with ``model_id``.

        Implements Algorithm 2: key lookup/fetch, model switch under the
        lock, per-thread runtime init, decrypt-execute-encrypt.  Returns
        the *ticket* identifying this request's execution context; the
        sealed output is fetched with ``EC_GET_OUTPUT(ticket)`` and
        released with ``EC_CLEAR_EXEC_CTX(ticket)``.
        """
        isolation = self._isolation
        self._check_pinned(model_id)
        with self._context_lock:
            if len(self._contexts) >= self.enclave.config.tcs_count:
                raise EnclaveError(
                    "all execution contexts are in use; fetch or clear "
                    "pending outputs before submitting more requests"
                )
        self.last_plan = plan_invocation(
            self._observable_state(uid, model_id),
            model_id,
            uid,
            key_cache_enabled=isolation.key_cache,
            reuse_runtime=isolation.reuse_runtime,
        )
        output, runtime = self._serve_guarded(
            uid,
            model_id,
            lambda entry, runtime, model: self._serve_payload(
                runtime, model, entry.cipher, enc_request, model_id
            ),
        )
        with self._context_lock:
            ticket = next(self._tickets)
            self._contexts[ticket] = output
        self._maybe_clear_runtime(runtime)
        return ticket

    @ecall
    def EC_MODEL_INF_BATCH(
        self, enc_requests: Sequence[bytes], uid: str, model_id: str
    ) -> List[int]:
        """Run inference on several of ``uid``'s requests in one ECALL.

        The batched flavour of ``EC_MODEL_INF``: one enclave transition,
        one key lookup, one runtime -- then every request is decrypted,
        executed, and sealed into its *own* ticketed execution context.
        Returns the tickets in request order.

        The batching **security rule** is enforced here, not on the
        untrusted host: the whole batch names a single ``<uid, M_oid>``
        pair and every payload must authenticate under that user's
        request key ``K_R`` -- a ciphertext belonging to any other user
        or model fails AEAD authentication and the batch is refused as
        a unit (no context is created).  Sequential builds promise that
        requests never co-execute, so they refuse any batch larger than
        one.
        """
        isolation = self._isolation
        size = len(enc_requests)
        if size == 0:
            raise InvocationError("refusing an empty batch")
        if isolation.sequential and size > 1:
            raise InvocationError(
                "sequential builds never co-execute requests; batch refused"
            )
        self._check_pinned(model_id)
        capacity = self.enclave.config.tcs_count
        with self._context_lock:
            if len(self._contexts) + size > capacity:
                raise EnclaveError(
                    f"batch of {size} exceeds the free execution contexts "
                    f"({capacity - len(self._contexts)} of {capacity}); fetch or "
                    "clear pending outputs before submitting more requests"
                )
        self.last_plan = plan_invocation(
            self._observable_state(uid, model_id),
            model_id,
            uid,
            key_cache_enabled=isolation.key_cache,
            reuse_runtime=isolation.reuse_runtime,
        )
        # all-or-nothing: a payload that fails authentication aborts the
        # whole batch before any context is committed, so the host's
        # fallback can re-dispatch the members individually
        outputs, runtime = self._serve_guarded(
            uid,
            model_id,
            lambda entry, runtime, model: [
                self._serve_payload(runtime, model, entry.cipher, enc, model_id)
                for enc in enc_requests
            ],
        )
        tickets: List[int] = []
        with self._context_lock:
            if len(self._contexts) + size > capacity:
                raise EnclaveError(
                    "execution contexts were exhausted while the batch executed"
                )
            for output in outputs:
                ticket = next(self._tickets)
                self._contexts[ticket] = output
                tickets.append(ticket)
        self.batch_log.append((uid, model_id, size))
        self._maybe_clear_runtime(runtime)
        return tickets

    @ecall
    def EC_GET_OUTPUT(self, ticket: int) -> bytes:
        """Copy ``ticket``'s encrypted output to the untrusted caller."""
        with self._context_lock:
            output = self._contexts.get(ticket)
        if output is None:
            raise EnclaveError(f"no output pending for ticket {ticket!r}")
        return output

    @ecall
    def EC_CLEAR_EXEC_CTX(self, ticket: int) -> None:
        """Release ``ticket``'s execution context (idempotent)."""
        with self._context_lock:
            self._contexts.pop(ticket, None)
        if self._isolation.clear_context:
            self._tls.runtime = None
            self._tls.runtime_model = None

    @ecall
    def EC_MODEL_INF_STREAM(
        self, enc_request: bytes, uid: str, model_id: str
    ) -> Tuple[int, bytes, bool]:
        """Open an autoregressive stream; returns ``(ticket, frame, done)``.

        The streaming flavour of ``EC_MODEL_INF``: the sealed prompt
        must authenticate under ``uid``'s request key ``K_R`` (the same
        per-user rule as ``EC_MODEL_INF_BATCH``), the whole prompt is
        prefilled, and the first token comes back immediately as a
        sealed frame -- time-to-first-token is one enclave transition.
        The decoder's KV caches stay in the enclave heap as a per-ticket
        stream context beside the execution-context table; neither
        prompt, KV state nor tokens ever cross the boundary in
        plaintext.  ``done`` is true when the generation budget was one
        token (no context is kept).  Later tokens come from
        ``EC_STREAM_STEP``; ``EC_STREAM_CLOSE`` abandons the stream.
        """
        isolation = self._isolation
        self._check_pinned(model_id)
        capacity = self.enclave.config.tcs_count
        with self._stream_lock:
            if len(self._streams) >= capacity:
                raise EnclaveError(
                    f"all {capacity} stream contexts are in use; drain or "
                    "close running streams before opening more"
                )
        self.last_plan = plan_invocation(
            self._observable_state(uid, model_id),
            model_id,
            uid,
            key_cache_enabled=isolation.key_cache,
            reuse_runtime=isolation.reuse_runtime,
        )
        ctx = self._stream_guarded(
            uid,
            model_id,
            lambda entry, model: self._open_stream(entry, model, enc_request, model_id),
        )
        frame = self._seal_frame(ctx)
        done = ctx.remaining == 0
        with self._stream_lock:
            ticket = next(self._tickets)
            if not done:
                if len(self._streams) >= capacity:
                    raise EnclaveError(
                        "stream contexts were exhausted while the prompt prefetched"
                    )
                self._streams[ticket] = ctx
        return ticket, frame, done

    @ecall
    def EC_STREAM_STEP(self, tickets: Sequence[int]) -> List[Tuple[bytes, bool]]:
        """Advance several streams one decode step in a single transition.

        The continuous-batching core: the host's group leader names the
        tickets of every live member and each decoder advances one
        token, so one enclave transition (and one service-time floor)
        amortises across the group.  The batching **security rule**
        matches ``EC_MODEL_INF_BATCH``: every ticket must belong to a
        single ``<uid, M_oid>`` pair (each stream already authenticated
        under that user's ``K_R`` at open time), the mix is refused as a
        unit, and sequential builds refuse co-stepping more than one
        stream.  Returns one ``(sealed_frame, done)`` per ticket in
        order; a drained stream's context -- KV cache included -- is
        released before returning.
        """
        if not tickets:
            raise InvocationError("refusing an empty stream step")
        if self._isolation.sequential and len(tickets) > 1:
            raise InvocationError(
                "sequential builds never co-execute requests; stream step refused"
            )
        with self._stream_lock:
            contexts: List[_StreamContext] = []
            for ticket in tickets:
                ctx = self._streams.get(ticket)
                if ctx is None:
                    raise EnclaveError(f"no stream open for ticket {ticket!r}")
                contexts.append(ctx)
            pairs = {(ctx.uid, ctx.model_id) for ctx in contexts}
            if len(pairs) > 1:
                raise InvocationError(
                    "a stream step must name a single <uid, model_id> pair; "
                    "step refused"
                )
        results: List[Tuple[bytes, bool]] = []
        for ticket, ctx in zip(tickets, contexts):
            with self._stage_span(
                Stage.MODEL_INFERENCE, model_id=ctx.model_id, component="mlrt"
            ):
                ctx.last_token = greedy(ctx.decoder.step(ctx.last_token))
            ctx.remaining -= 1
            frame = self._seal_frame(ctx)
            done = ctx.remaining == 0
            if done:
                with self._stream_lock:
                    self._streams.pop(ticket, None)
            results.append((frame, done))
        first = contexts[0]
        self.stream_log.append((first.uid, first.model_id, len(contexts)))
        return results

    @ecall
    def EC_STREAM_CLOSE(self, ticket: int) -> None:
        """Release ``ticket``'s stream context and KV cache (idempotent).

        The streaming sibling of ``EC_CLEAR_EXEC_CTX``: the host calls
        it when a stream is cancelled so an abandoned decode never pins
        enclave heap.
        """
        with self._stream_lock:
            self._streams.pop(ticket, None)

    @ecall
    def EC_INVALIDATE_KEYS(
        self, uid: Optional[str] = None, model_id: Optional[str] = None
    ) -> int:
        """Drop memoised key entries (the revocation/re-grant push hook).

        An extension beyond the Figure 5 surface, like
        ``EC_MODEL_INF_BATCH``: the untrusted host relays an owner's
        revocation or a user's re-grant so the enclave forgets the
        matching cached provisioning verdicts immediately instead of
        waiting for the stale entries to fail authentication.  ``None``
        matches everything.  Returns how many entries were dropped.
        Dropping is always safe -- the next request refetches and
        KeyService re-evaluates the grant (Algorithm 1).
        """
        with self._kc_lock:
            victims = [
                pair
                for pair in self._kc
                if (uid is None or pair[0] == uid)
                and (model_id is None or pair[1] == model_id)
            ]
            for pair in victims:
                del self._kc[pair]
        return len(victims)

    # -- internals (trusted) -------------------------------------------------------------

    def _check_pinned(self, model_id: str) -> None:
        isolation = self._isolation
        if isolation.pinned_model is not None and model_id != isolation.pinned_model:
            raise InvocationError(
                f"this enclave build is pinned to model {isolation.pinned_model!r}"
            )

    def _obtain_keys(self, uid: str, model_id: str) -> Tuple["_KeyCacheEntry", bool]:
        """Algorithm 2 lines 6-10: keys from the memo or from KeyService.

        Returns ``(entry, from_cache)``.  A memo hit skips the whole
        KeyService round trip *and* the request-cipher derivation; a
        miss provisions, derives, and (when the build's key_cache bit
        allows caching at all) memoises the entry, LRU-bounded by
        ``key_cache_entries``.
        """
        isolation = self._isolation
        pair = (uid, model_id)
        if isolation.key_cache:
            with self._kc_lock:
                entry = self._kc.get(pair)
                if entry is not None:
                    self._kc.move_to_end(pair)
                    return entry, True
        with self._stage_span(Stage.KEY_RETRIEVAL, model_id=model_id):
            model_key, request_key = self._fetch_keys(uid, model_id)
        entry = _KeyCacheEntry(uid, model_id, model_key, request_key)
        if isolation.key_cache:
            with self._kc_lock:
                self._kc[pair] = entry
                self._kc.move_to_end(pair)
                while len(self._kc) > self._kc_capacity:
                    self._kc.popitem(last=False)
        return entry, False

    def _invalidate_pair(self, uid: str, model_id: str) -> None:
        with self._kc_lock:
            self._kc.pop((uid, model_id), None)

    def _serve_guarded(self, uid: str, model_id: str, fn):
        """Obtain keys/model/runtime and run ``fn``, self-healing stale memos.

        When a memoised entry's keys no longer authenticate -- the user
        re-granted a fresh request key, or the owner rotated the model
        key -- the first failure drops the entry and retries exactly
        once with freshly provisioned keys; a failure on fresh keys (a
        genuinely forged request) propagates.  Returns ``(fn result,
        runtime)``.
        """
        entry, from_cache = self._obtain_keys(uid, model_id)
        try:
            model = self._switch_model(model_id, entry.model_key)
            runtime = self._thread_runtime(model, model_id)
            return fn(entry, runtime, model), runtime
        except InvocationError:
            if not from_cache:
                raise
            self._invalidate_pair(uid, model_id)
            entry, _ = self._obtain_keys(uid, model_id)
            model = self._switch_model(model_id, entry.model_key)
            runtime = self._thread_runtime(model, model_id)
            return fn(entry, runtime, model), runtime

    def _stream_guarded(self, uid: str, model_id: str, fn):
        """:meth:`_serve_guarded`'s streaming twin: keys + model, no runtime.

        A stream decodes through a :class:`DecoderSession` rather than a
        per-TCS runtime (its state is per-*stream*, not per-thread), so
        this skips the thread-runtime step while keeping the same
        stale-memo self-healing: one retry with fresh keys when a cached
        entry no longer authenticates.
        """
        entry, from_cache = self._obtain_keys(uid, model_id)
        try:
            model = self._switch_model(model_id, entry.model_key)
            return fn(entry, model)
        except InvocationError:
            if not from_cache:
                raise
            self._invalidate_pair(uid, model_id)
            entry, _ = self._obtain_keys(uid, model_id)
            model = self._switch_model(model_id, entry.model_key)
            return fn(entry, model)

    def _open_stream(
        self,
        entry: _KeyCacheEntry,
        model: Model,
        enc_request: bytes,
        model_id: str,
    ) -> _StreamContext:
        """Authenticate a stream request, prefill, emit the first token."""
        with self._stage_span(Stage.REQUEST_DECRYPT, model_id=model_id):
            try:
                payload = wire.loads(
                    entry.cipher.unseal(
                        enc_request, aad=STREAM_AAD + model_id.encode()
                    )
                )
            except Exception as exc:
                raise InvocationError(
                    "stream request does not authenticate under the user's "
                    "request key"
                ) from exc
        prompt = np.frombuffer(payload["prompt"], dtype=np.float32)
        if prompt.size == 0:
            raise InvocationError("refusing an empty prompt")
        max_new = int(payload["max_new_tokens"])
        if not 1 <= max_new <= MAX_STREAM_TOKENS:
            raise InvocationError(
                f"max_new_tokens must be between 1 and {MAX_STREAM_TOKENS}"
            )
        try:
            decoder = DecoderSession(model)
        except ModelError as exc:
            # a non-streamable model (e.g. the CNN zoo) is a bad request,
            # not an enclave failure
            raise InvocationError(str(exc)) from exc
        with self._stage_span(
            Stage.MODEL_INFERENCE, model_id=model_id, component="mlrt"
        ):
            first = greedy(decoder.prefill(int(t) for t in prompt))
        return _StreamContext(
            entry.uid, model_id, decoder, entry.cipher, first, max_new - 1
        )

    def _seal_frame(self, ctx: _StreamContext) -> bytes:
        """Seal one token frame under the stream's request cipher.

        Frames carry their index and a done marker inside the sealed
        payload, so a host that drops, reorders or replays frames is
        detectable by the client, not just by the enclave.
        """
        with self._stage_span(Stage.RESULT_ENCRYPT, model_id=ctx.model_id):
            frame = ctx.cipher.seal(
                wire.dumps(
                    {
                        "token": ctx.last_token,
                        "index": ctx.index,
                        "done": ctx.remaining == 0,
                    },
                    codec=wire.BINARY,
                ),
                aad=FRAME_AAD + ctx.model_id.encode(),
            )
        ctx.index += 1
        return frame

    def _switch_model(self, model_id: str, model_key: bytes) -> Model:
        """Lines 11-13: switch the shared model if needed.  Double-checked
        under the lock: the first thread decrypts, later threads reuse
        the heap copy without serialising on the decrypt."""
        if self._model_id != model_id:
            with self._model_lock:
                if self._model_id != model_id:
                    self._model = self._model_load(model_id, model_key)
                    self._model_id = model_id
                    # the memo only ever holds pairs for the loaded
                    # model: evicting on switch guarantees a reload can
                    # never pair a stale key with a new artifact (the
                    # key-rotation safety rule)
                    with self._kc_lock:
                        for pair in [
                            p for p in self._kc if p[1] != model_id
                        ]:
                            del self._kc[pair]
        return self._model

    def _thread_runtime(self, model: Model, model_id: str):
        """Lines 14-15: this TCS thread's model runtime."""
        isolation = self._isolation
        runtime = getattr(self._tls, "runtime", None)
        runtime_model = getattr(self._tls, "runtime_model", None)
        if (
            runtime is None
            or runtime_model != model_id
            or not isolation.reuse_runtime
        ):
            with self._stage_span(
                Stage.RUNTIME_INIT, model_id=model_id, component="mlrt"
            ):
                runtime = self._framework.create_runtime(model)
            self._tls.runtime = runtime
            self._tls.runtime_model = model_id
        return runtime

    def _serve_payload(
        self,
        runtime,
        model: Model,
        request_cipher: SessionCipher,
        enc_request: bytes,
        model_id: str,
    ) -> bytes:
        """Lines 16-19: decrypt one input, execute, seal the output."""
        with self._stage_span(Stage.REQUEST_DECRYPT, model_id=model_id):
            try:
                payload = wire.loads(
                    request_cipher.unseal(
                        enc_request, aad=REQUEST_AAD + model_id.encode()
                    )
                )
            except Exception as exc:
                raise InvocationError(
                    "request does not authenticate under the user's request key"
                ) from exc
            x = np.frombuffer(payload["input"], dtype=np.float32).reshape(
                model.input_spec.shape
            )
        with self._stage_span(
            Stage.MODEL_INFERENCE, model_id=model_id, component="mlrt"
        ):
            runtime.execute(x)
            result = runtime.prepare_output()
        with self._stage_span(Stage.RESULT_ENCRYPT, model_id=model_id):
            # the hot-path payload rides the binary framing: the result
            # tensor travels as a raw segment, never hex-doubled
            return request_cipher.seal(
                wire.dumps({"output": result}, codec=wire.BINARY),
                aad=RESPONSE_AAD + model_id.encode(),
            )

    def _maybe_clear_runtime(self, runtime) -> None:
        if self._isolation.clear_context:
            runtime.clear()
            self._tls.runtime = None
            self._tls.runtime_model = None

    def _stage_span(self, stage: Stage, **attributes):
        """A Figure-4 stage span (no-op context when tracing is off)."""
        return maybe_span(
            self.tracer, f"stage:{stage.value}", stage=stage.value, **attributes
        )

    def _observable_state(
        self, uid: Optional[str] = None, model_id: Optional[str] = None
    ) -> SemirtCacheState:
        """Current cache state in the shared planning representation.

        The planning representation models one visible ``<M_oid, uid>``
        pair; with the multi-entry memo the visible pair is the
        *queried* one whenever it is memoised (plans stay exact for
        every hot user), falling back to the most recently used entry.
        """
        runtime_for = getattr(self._tls, "runtime_model", None)
        with self._kc_lock:
            if uid is not None and (uid, model_id) in self._kc:
                key_cache = (model_id, uid)
            elif self._kc:
                last_uid, last_model = next(reversed(self._kc))
                key_cache = (last_model, last_uid)
            else:
                key_cache = None
        return SemirtCacheState(
            enclave_ready=True,  # code running => enclave exists
            loaded_model=self._model_id,
            key_cache=key_cache,
            runtime_for=runtime_for,
        )

    def _model_load(self, model_id: str, model_key: bytes) -> Model:
        """MODEL_LOAD: pull ciphertext via OCALL, decrypt + deserialise inside."""
        with self._stage_span(Stage.MODEL_LOADING, model_id=model_id):
            encrypted = self.ocall("OC_LOAD_MODEL", model_id)
        with self._stage_span(Stage.MODEL_DECRYPT, model_id=model_id):
            try:
                plaintext = AESGCM(model_key).open(encrypted, aad=model_id.encode())
            except Exception as exc:
                raise InvocationError(
                    f"model {model_id!r} failed authentication (tampered or wrong key)"
                ) from exc
            finally:
                self.ocall("OC_FREE_LOADED", model_id)
            return self._framework.load_model(plaintext)

    def _ensure_keyservice_session(self) -> Tuple[int, SecureChannel]:
        """Mutual RA-TLS with KeyService, reused across invocations."""
        if self._ks_session is not None:
            return self._ks_session
        with maybe_span(
            self.tracer, "ratls_handshake", client="semirt", peer="keyservice"
        ):
            return self._establish_keyservice_session()

    def _establish_keyservice_session(self) -> Tuple[int, SecureChannel]:
        """One mutual RA-TLS handshake with KeyService (always fresh)."""
        peer = RatlsPeer(
            "semirt",
            enclave=self.enclave,
            quoter=lambda report: self.ocall("OC_GET_QUOTE", report),
        )
        offer = peer.offer()
        reply = self.ocall("OC_KS_HANDSHAKE", offer.to_wire())
        server_offer = HandshakeOffer.from_wire(reply["server_offer"])
        channel = complete_handshake(
            peer,
            offer,
            server_offer,
            verifier=self._attestation,
            client_requires=QuotePolicy(expected_mrenclave=self._expected_keyservice),
        )
        self._ks_session = (reply["channel_id"], channel)
        return self._ks_session

    def _fetch_keys(self, uid: str, model_id: str) -> Tuple[bytes, bytes]:
        """KEY_PROVISIONING round trip over the attested channel.

        Serialised under ``_ks_lock``: the secure channel's counter
        nonces admit one in-flight operation, so concurrent TCS threads
        that both miss the key cache queue here rather than corrupt the
        channel.  If the cached session is stale -- KeyService restarted,
        so the channel id or keys no longer match -- the session is
        dropped and re-established once with a fresh mutual attestation.
        Only transport-shaped failures trigger that path; protocol
        verdicts (:class:`AccessDenied`) propagate untouched.
        """
        with self._ks_lock:
            try:
                reply = self._provision_over_session(uid, model_id)
            except (CryptoError, EnclaveError, TransportError, WireError) as exc:
                # transport/crypto failure: stale session after a KeyService
                # restart, or a mangled message.  Re-attest and retry exactly
                # once -- a second failure means KeyService is really gone.
                self._ks_session = None
                # the KeyService we re-attest may have restarted from
                # sealed state (EC_SEAL_STATE/EC_RESTORE_STATE) or be a
                # failed-over shard replica: every memoised verdict
                # predates that world, so the memo is flushed wholesale
                with self._kc_lock:
                    self._kc.clear()
                if self.tracer is not None:
                    span = self.tracer.current_span()
                    if span is not None:
                        span.add_event(
                            "keyservice_reattest", error=type(exc).__name__
                        )
                reply = self._provision_over_session(uid, model_id)
        if not reply.get("ok"):
            raise AccessDenied(reply.get("error", "key provisioning refused"))
        return reply["model_key"], reply["request_key"]

    def _provision_over_session(self, uid: str, model_id: str) -> dict:
        channel_id, channel = self._ensure_keyservice_session()
        request = channel.send(
            wire.dumps({"op": "provision", "uid": uid, "model_id": model_id})
        )
        reply_cipher = self.ocall("OC_KS_REQUEST", channel_id, request)
        return wire.loads(channel.recv(reply_cipher))


class InferenceFuture:
    """A submitted request's handle: resolves to the sealed output.

    Returned immediately by :meth:`SemirtHost.submit`; :meth:`result`
    blocks until the TCS scheduler has served the request (or failed
    it, in which case the worker's exception re-raises here).

    :meth:`cancel` asks the scheduler to drop the request.  A request
    cancelled before its output was delivered resolves to
    :class:`~repro.errors.RequestCancelled`, and the scheduler releases
    its enclave execution context (``EC_CLEAR_EXEC_CTX``) before the
    error surfaces -- a cancelled request never leaks a context slot.
    Once :meth:`done` is true the outcome is sealed and :meth:`cancel`
    returns ``False``.

    ``ticket`` is a host-assigned monotonic id kept for observability
    (span attributes, service-tier request ids); it is **not** a result
    handle -- resolve the future itself.
    """

    def __init__(self, enc_request: bytes, uid: str, model_id: str) -> None:
        self.uid = uid
        self.model_id = model_id
        self._enc_request = enc_request
        self._done = threading.Event()
        self._output: Optional[bytes] = None
        self._error: Optional[BaseException] = None
        self._state_lock = threading.Lock()
        self._cancelled = False
        #: monotonic id for observability (set by :meth:`SemirtHost.submit`)
        self.ticket: Optional[int] = None
        #: ambient span at submit time; the worker re-parents under it
        self._parent = None
        self._enqueued_at = time.monotonic()
        #: the TCS slot that served this request (set by the worker)
        self.tcs_slot: Optional[int] = None
        #: seconds spent in the admission queue (set by the worker)
        self.queue_wait: Optional[float] = None

    def done(self) -> bool:
        """True once the request has completed (successfully or not)."""
        return self._done.is_set()

    def cancelled(self) -> bool:
        """True when cancellation was requested (and not lost to a result)."""
        with self._state_lock:
            return self._cancelled

    def cancel(self) -> bool:
        """Request cancellation; ``False`` when the outcome is already sealed.

        Returning ``True`` guarantees :meth:`result` raises
        :class:`~repro.errors.RequestCancelled` and the request's enclave
        execution context has been (or will be, before the error
        surfaces) cleared via ``EC_CLEAR_EXEC_CTX``.
        """
        with self._state_lock:
            if self._done.is_set():
                return False
            self._cancelled = True
            return True

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the outcome is sealed; ``False`` on timeout.

        Unlike :meth:`result` this neither consumes nor re-raises --
        the service tier long-polls with it before deciding whether to
        deliver the output or replay a terminal error.
        """
        return self._done.wait(timeout_s)

    def result(self, timeout_s: Optional[float] = None) -> bytes:
        """Block for the sealed output; re-raises the worker's failure.

        ``timeout_s`` follows the repo-wide rule (docs/service.md):
        every user-facing wait takes ``timeout_s``, seconds, ``None``
        meaning wait forever, :class:`~repro.errors.DeadlineExceeded`
        on expiry.
        """
        if not self._done.wait(timeout_s):
            raise DeadlineExceeded(
                f"request for model {self.model_id!r} not served within {timeout_s}s"
            )
        if self._error is not None:
            raise self._error
        assert self._output is not None
        return self._output

    def _cancel_requested(self) -> bool:
        with self._state_lock:
            return self._cancelled

    def _complete(self, output: bytes) -> None:
        with self._state_lock:
            if self._cancelled:
                # cancel() already promised RequestCancelled; the serving
                # worker cleared the execution context on its way here
                self._error = RequestCancelled(
                    f"request for model {self.model_id!r} was cancelled"
                )
            else:
                self._output = output
            self._done.set()

    def _fail(self, error: BaseException) -> None:
        with self._state_lock:
            self._error = error
            self._done.set()


class InferenceStream:
    """A live autoregressive stream: sealed token frames as they decode.

    Returned immediately by :meth:`SemirtHost.open_stream`.  Iterating
    yields sealed frames in order as the decode loop emits them (the
    consumer decrypts each with
    :meth:`~repro.core.client.UserClient.decrypt_frame`);
    :meth:`result` blocks for the complete frame sequence, which makes a
    stream satisfy the :class:`~repro.core.futures.Future` protocol --
    the one-shot view of a streaming request.

    :meth:`cancel` stops generation between decode steps: the group
    leader closes the enclave stream context (``EC_STREAM_CLOSE``
    releases the KV cache) before :class:`~repro.errors.RequestCancelled`
    surfaces to iterators and waiters.

    ``ttft_s`` and ``tokens_per_s`` are measured host-side from frame
    arrival times -- the observability the streaming benchmark reports.
    """

    def __init__(self, enc_request: bytes, uid: str, model_id: str) -> None:
        self.uid = uid
        self.model_id = model_id
        self._enc_request = enc_request
        self._cv = threading.Condition()
        self._frames: List[bytes] = []
        self._finished = False
        self._error: Optional[BaseException] = None
        self._cancelled = False
        #: monotonic id for observability (set by :meth:`SemirtHost.open_stream`)
        self.ticket: Optional[int] = None
        #: ambient span at submit time; the leader re-parents under it
        self._parent = None
        self._enqueued_at = time.monotonic()
        #: the TCS slot whose leader admitted this stream
        self.tcs_slot: Optional[int] = None
        #: seconds spent in the admission queue (set by the worker)
        self.queue_wait: Optional[float] = None
        self._first_frame_at: Optional[float] = None
        self._last_frame_at: Optional[float] = None

    # -- the Future protocol -------------------------------------------------------

    def done(self) -> bool:
        """True once the stream has drained, failed, or been cancelled."""
        with self._cv:
            return self._terminal()

    def cancelled(self) -> bool:
        """True when cancellation was requested (and not lost to completion)."""
        with self._cv:
            return self._cancelled

    def cancel(self) -> bool:
        """Request cancellation; ``False`` when the stream already ended.

        Returning ``True`` guarantees iteration/:meth:`result` raises
        :class:`~repro.errors.RequestCancelled` and the stream's enclave
        context (KV cache included) has been -- or will be, before the
        error surfaces -- released via ``EC_STREAM_CLOSE``.
        """
        with self._cv:
            if self._terminal():
                return False
            self._cancelled = True
            return True

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the stream is terminal; ``False`` on timeout."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._cv:
            while not self._terminal():
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    def result(self, timeout_s: Optional[float] = None) -> List[bytes]:
        """Block for the full sealed-frame sequence; re-raise any failure.

        The ``Future`` view of a stream: where ``InferenceFuture.result``
        returns one sealed output, this returns the ordered list of
        sealed token frames.  ``timeout_s`` follows the repo-wide rule
        (:class:`~repro.errors.DeadlineExceeded` on expiry).
        """
        if not self.wait(timeout_s):
            raise DeadlineExceeded(
                f"stream for model {self.model_id!r} not drained within {timeout_s}s"
            )
        with self._cv:
            if self._error is not None:
                raise self._error
            return list(self._frames)

    # -- streaming consumption -----------------------------------------------------

    def __iter__(self):
        """Yield sealed frames in decode order, blocking between steps."""
        index = 0
        while True:
            with self._cv:
                while index >= len(self._frames) and not self._terminal():
                    self._cv.wait()
                if index < len(self._frames):
                    frame = self._frames[index]
                elif self._error is not None:
                    raise self._error
                else:
                    return
            index += 1
            yield frame

    @property
    def token_count(self) -> int:
        """Frames delivered so far (grows while the stream decodes)."""
        with self._cv:
            return len(self._frames)

    @property
    def ttft_s(self) -> Optional[float]:
        """Seconds from submission to the first frame (None before it)."""
        with self._cv:
            if self._first_frame_at is None:
                return None
            return self._first_frame_at - self._enqueued_at

    @property
    def tokens_per_s(self) -> Optional[float]:
        """Decode throughput over the frames delivered so far."""
        with self._cv:
            if self._first_frame_at is None or self._last_frame_at is None:
                return None
            elapsed = self._last_frame_at - self._enqueued_at
            if elapsed <= 0:
                return None
            return len(self._frames) / elapsed

    # -- scheduler side ------------------------------------------------------------

    def _terminal(self) -> bool:
        return self._finished or self._error is not None

    def _cancel_requested(self) -> bool:
        with self._cv:
            return self._cancelled

    def _push(self, frame: bytes) -> None:
        with self._cv:
            now = time.monotonic()
            if self._first_frame_at is None:
                self._first_frame_at = now
            self._last_frame_at = now
            self._frames.append(frame)
            self._cv.notify_all()

    def _finish(self) -> None:
        with self._cv:
            if not self._terminal():
                self._finished = True
            self._cv.notify_all()

    def _fail(self, error: BaseException) -> None:
        with self._cv:
            if not self._terminal():
                self._error = error
            self._cv.notify_all()


class _FormingBatch:
    """One accumulating hot-path batch: the leader plus joined followers.

    Host-side bookkeeping only -- the enclave re-checks the same-pair
    rule on every ``EC_MODEL_INF_BATCH`` regardless of what the host
    accumulated (each payload must authenticate under *that* user's
    request key).
    """

    def __init__(self, leader: InferenceFuture) -> None:
        self.uid = leader.uid
        self.model_id = leader.model_id
        self.members: List[InferenceFuture] = [leader]
        self.closed = False


class _StreamGroup:
    """One running continuous batch of streams (host bookkeeping only).

    Unlike :class:`_FormingBatch` -- which collects, closes, executes
    once -- a stream group stays open while it decodes: new streams land
    in ``joiners`` and the leader absorbs them *between* decode steps,
    and a drained or cancelled member leaves without stopping the rest.
    The enclave re-checks the same-pair rule on every ``EC_STREAM_STEP``
    regardless of what the host grouped.
    """

    def __init__(self, leader: InferenceStream) -> None:
        self.uid = leader.uid
        self.model_id = leader.model_id
        #: streams waiting for the leader to open them in-enclave
        self.joiners: List[InferenceStream] = [leader]
        #: ``(enclave ticket, stream)`` pairs currently decoding
        self.members: List[Tuple[int, InferenceStream]] = []
        self.closed = False


#: queue sentinel telling a scheduler worker to exit
_SHUTDOWN = object()


class SemirtHost:
    """Untrusted host side of a SeMIRT instance.

    Owns the enclave, wires the OCALLs (model download, quote generation,
    KeyService networking), and exposes the action interface a serverless
    request hits.  Everything it relays is ciphertext.

    Requests are served by the **TCS-slot scheduler**: one worker thread
    per TCS, fed from a bounded admission queue.  :meth:`submit` /
    :meth:`result` are the asynchronous entry points (how ``infer_many``
    keeps a multi-TCS enclave full); :meth:`infer` is the blocking
    composition.
    """

    def __init__(
        self,
        platform: SgxPlatform,
        storage,
        keyservice_host,
        framework: str,
        attestation: AttestationService,
        *,
        config: Optional[EnclaveBuildConfig] = None,
        isolation: Optional[IsolationSettings] = None,
        scheduler: Optional[SchedulerConfig] = None,
        tracer=None,
        injector=None,
    ) -> None:
        isolation = isolation if isolation is not None else IsolationSettings()
        if isolation.sequential:
            config = config or default_semirt_config(tcs_count=1)
            if config.tcs_count != 1:
                raise EnclaveError("sequential isolation requires tcs_count == 1")
        config = config or default_semirt_config()
        self.platform = platform
        self.storage = storage
        self.tracer = tracer
        self.scheduler = scheduler or SchedulerConfig()
        self._keyservice = keyservice_host
        #: optional repro.faults.FaultInjector; wire sites wrap the
        #: KeyService OCALLs, the crash site fires per submitted request
        self._injector = injector
        code = SemirtEnclaveCode(
            framework=framework,
            attestation=attestation,
            keyservice_measurement=keyservice_host.measurement,
            isolation=isolation,
            tracer=tracer,
            key_cache_entries=self.scheduler.key_cache_entries,
        )
        with maybe_span(
            tracer,
            f"stage:{Stage.ENCLAVE_INIT.value}",
            stage=Stage.ENCLAVE_INIT.value,
            framework=framework,
        ):
            self.enclave: Enclave = platform.create_enclave(code, config)
        self.code = code
        self._loaded_blobs: dict = {}
        self.enclave.register_ocall("OC_GET_QUOTE", platform.quote)
        self.enclave.register_ocall("OC_LOAD_MODEL", self._oc_load_model)
        self.enclave.register_ocall("OC_FREE_LOADED", self._oc_free_loaded)
        self.enclave.register_ocall("OC_KS_HANDSHAKE", self._oc_ks_handshake)
        self.enclave.register_ocall("OC_KS_REQUEST", self._oc_ks_request)
        # the TCS-slot scheduler: workers start lazily on first submit
        self._queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=self.scheduler.queue_depth
        )
        self._workers: List[threading.Thread] = []
        self._workers_lock = threading.Lock()
        # the hot-path batch accumulator (armed by SchedulerConfig.batch)
        self._isolation = isolation
        if self.scheduler.batch is not None and isolation.sequential:
            raise EnclaveError(
                "sequential isolation never co-executes requests; "
                "SchedulerConfig.batch cannot be combined with it"
            )
        self._batch_policy: Optional[BatchPolicy] = (
            self.scheduler.batch.clamped(self.enclave.config.tcs_count)
            if self.scheduler.batch is not None
            else None
        )
        self._batch_cv = threading.Condition()
        self._forming: Optional[_FormingBatch] = None
        #: the running continuous batch of streams (one per host; guarded
        #: by _batch_cv like the forming batch)
        self._stream_group: Optional[_StreamGroup] = None
        #: enclave execution contexts reserved by in-flight serves; a
        #: batch holds several contexts with one worker thread, so the
        #: host must account for them across workers (the enclave's own
        #: capacity check remains the backstop)
        self._contexts_in_flight = 0
        #: last <uid, model_id> pair served to completion -- the host's
        #: hot-path hint for when leading a batch is worth the window
        self._hot_pair: Optional[Tuple[str, str]] = None
        # observability ids stamped onto futures (span attributes only)
        self._ticket_ids = itertools.count(1)

    @property
    def measurement(self) -> EnclaveMeasurement:
        return self.enclave.measurement

    @property
    def batch_policy(self) -> Optional[BatchPolicy]:
        """The armed (TCS-clamped) batch policy, or ``None``.

        The public view of ``SchedulerConfig.batch`` after clamping:
        the gateway's batch-affinity hint and
        :meth:`UserSession.infer_many`'s window derivation both read it,
        so host policy flows outward from one place.
        """
        return self._batch_policy

    def _oc_load_model(self, model_id: str) -> bytes:
        blob = self.storage.get(f"models/{model_id}")
        self._loaded_blobs[model_id] = blob
        return blob

    def _oc_free_loaded(self, model_id: str) -> None:
        self._loaded_blobs.pop(model_id, None)

    def _oc_ks_handshake(self, offer_wire: dict) -> dict:
        """Relay a handshake offer to KeyService across a faulty link.

        The offer crosses the wire in encoded form so drop/corrupt faults
        apply to real bytes; a corrupted offer fails to decode (or fails
        attestation), which the enclave's re-attestation path absorbs.
        """
        raw = maybe_wire(self._injector, "semirt->keyservice", wire.dumps(offer_wire))
        return self._keyservice.handshake(wire.loads(raw))

    def _oc_ks_request(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Relay one encrypted KeyService operation across faulty links."""
        ciphertext = maybe_wire(self._injector, "semirt->keyservice", ciphertext)
        reply = self._keyservice.request(channel_id, ciphertext)
        return maybe_wire(self._injector, "keyservice->semirt", reply)

    # -- the TCS-slot scheduler -----------------------------------------------------

    def _ensure_workers(self) -> None:
        with self._workers_lock:
            if self._workers:
                return
            for slot in range(self.enclave.config.tcs_count):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(slot,),
                    name=f"semirt-{self.enclave.enclave_id}-tcs{slot}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)

    def _worker_loop(self, slot: int) -> None:
        """One scheduler worker, bound to TCS slot ``slot`` for its lifetime."""
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            future = item
            future.tcs_slot = slot
            future.queue_wait = time.monotonic() - future._enqueued_at
            if future._cancel_requested():
                # never reached the enclave: no context to clear
                future._fail(
                    RequestCancelled(
                        f"request for model {future.model_id!r} was cancelled"
                    )
                )
                continue
            if isinstance(future, InferenceStream):
                self._handle_stream(future, slot)
                continue
            if self._batch_policy is not None and self._maybe_batch(future, slot):
                continue
            self._serve_one(future, slot)

    def _serve_one(self, future: InferenceFuture, slot: int) -> None:
        """Serve one request on the single-request path, resolving its future."""
        try:
            output = self._serve(future, slot)
        except BaseException as exc:  # noqa: BLE001 - relayed to the waiter
            future._fail(exc)
        else:
            future._complete(output)

    # -- the batch accumulator (armed by SchedulerConfig.batch) --------------------

    def _maybe_batch(self, future: InferenceFuture, slot: int) -> bool:
        """Route one request through the batch plane when it is batchable.

        Returns ``True`` when the request was handled here (joined a
        forming batch, whose leader resolves it; or led one itself) and
        ``False`` when the caller should take the single-request path --
        which is every request whose ``<uid, model_id>`` pair is not the
        host's current hot pair.  The hint can be stale; correctness
        never depends on it, only the batching win does.
        """
        policy = self._batch_policy
        pair = (future.uid, future.model_id)
        with self._batch_cv:
            forming = self._forming
            if (
                forming is not None
                and not forming.closed
                and (forming.uid, forming.model_id) == pair
                and len(forming.members) < policy.max_batch
            ):
                forming.members.append(future)
                if len(forming.members) >= policy.max_batch:
                    self._batch_cv.notify_all()  # wake the leader early
                return True
            if policy.max_batch <= 1 or policy.batch_window_s <= 0:
                return False
            if self._hot_pair != pair:
                return False
            # this worker becomes the leader of a fresh forming batch
            # (a full or closed predecessor may still be executing --
            # batches pipeline across workers)
            batch = _FormingBatch(future)
            self._forming = batch
        self._lead_batch(batch, slot)
        return True

    def _lead_batch(self, batch: _FormingBatch, slot: int) -> None:
        """Leader side: collect followers, then execute the whole batch.

        The leader waits up to ``batch_window_s`` for followers, bounded
        by ``max_batch`` *and free execution contexts*: while the
        enclave's context table is full (a previous batch still
        executing), closing the window early would buy nothing, so the
        batch keeps collecting until a slot frees up -- batches pipeline
        and self-clock to the enclave's completion rate.  A hard
        deadline bounds the stretch so a wedged enclave can never hang
        followers (the context reservation's own timeout is the final
        backstop).
        """
        policy = self._batch_policy
        capacity = self.enclave.config.tcs_count
        deadline = time.monotonic() + policy.batch_window_s
        hard_deadline = deadline + 30.0
        with self._batch_cv:
            while len(batch.members) < policy.max_batch:
                now = time.monotonic()
                remaining = deadline - now
                if remaining <= 0:
                    room = self._contexts_in_flight + len(batch.members) <= capacity
                    if room or not self.enclave.alive or now >= hard_deadline:
                        break
                    remaining = hard_deadline - now
                self._batch_cv.wait(remaining)
            batch.closed = True
            if self._forming is batch:
                self._forming = None
            members = list(batch.members)
        live: List[InferenceFuture] = []
        for member in members:
            if member._cancel_requested():
                member._fail(
                    RequestCancelled(
                        f"request for model {member.model_id!r} was cancelled"
                    )
                )
            else:
                live.append(member)
        if not live:
            return
        if len(live) == 1:
            # a batch of one takes the ordinary path: same ECALLs,
            # same spans, byte-identical output
            self._serve_one(live[0], slot)
            return
        if self._injector is not None and self._injector.crash_enclave("semirt:batch"):
            # the leader dies mid-batch: followers must never hang
            self.destroy()
            for member in live:
                member._fail(FaultInjected("semirt enclave crashed mid-batch ECALL"))
            return
        try:
            self._reserve_contexts(len(live))
        except BaseException as exc:  # noqa: BLE001 - relayed to the waiters
            for member in live:
                member._fail(exc)
            return
        try:
            self._serve_batch(live, slot)
        except BaseException as exc:  # noqa: BLE001 - fall back or fail over
            self._release_contexts(len(live))
            if not self.enclave.alive:
                for member in live:
                    member._fail(exc)
                return
            # the batch ECALL failed but the enclave survived (e.g. one
            # member's payload refused to authenticate): re-dispatch the
            # members individually so good requests still complete --
            # reservations were released above, so the singles cannot
            # deadlock against our own accounting
            for member in live:
                self._serve_one(member, slot)
        else:
            self._release_contexts(len(live))

    def _serve_batch(self, members: List[InferenceFuture], slot: int) -> None:
        """Drive one ``EC_MODEL_INF_BATCH`` cycle, resolving every member.

        Raises only when the batch ECALL itself fails (no context was
        committed -- the enclave is all-or-nothing); per-member fetch
        failures resolve just that member's future.
        """
        leader = members[0]
        size = len(members)
        floor = self.scheduler.paced_service_s
        attach = (
            self.tracer.attach(leader._parent)
            if self.tracer is not None and leader._parent is not None
            else nullcontext()
        )
        with attach:
            started = time.monotonic()
            started_cpu = time.thread_time()
            with maybe_span(
                self.tracer,
                "ecall:EC_MODEL_INF_BATCH",
                model_id=leader.model_id,
                tcs_slot=slot,
                batch_size=size,
                leader_ticket=leader.ticket,
                amortised_s=(
                    self._batch_policy.amortised_s(floor, size)
                    if floor is not None
                    else None
                ),
                queue_wait=leader.queue_wait,
            ):
                handles = self.enclave.ecall(
                    "EC_MODEL_INF_BATCH",
                    [member._enc_request for member in members],
                    leader.uid,
                    leader.model_id,
                )
                self._pace(started, started_cpu, size=size)
            for member, handle in zip(members, handles):
                member.tcs_slot = slot
                try:
                    if member._cancel_requested():
                        with maybe_span(
                            self.tracer, "ecall:EC_CLEAR_EXEC_CTX", tcs_slot=slot
                        ):
                            self.enclave.ecall("EC_CLEAR_EXEC_CTX", handle)
                        member._fail(
                            RequestCancelled(
                                f"request for model {member.model_id!r} was cancelled"
                            )
                        )
                        continue
                    with maybe_span(
                        self.tracer, "ecall:EC_GET_OUTPUT", tcs_slot=slot
                    ):
                        output = self.enclave.ecall("EC_GET_OUTPUT", handle)
                    with maybe_span(
                        self.tracer, "ecall:EC_CLEAR_EXEC_CTX", tcs_slot=slot
                    ):
                        self.enclave.ecall("EC_CLEAR_EXEC_CTX", handle)
                except BaseException as exc:  # noqa: BLE001 - this member only
                    member._fail(exc)
                else:
                    member._complete(output)
        self._note_served(leader.uid, leader.model_id)

    def _reserve_contexts(self, n: int, timeout_s: float = 30.0) -> None:
        """Block until ``n`` enclave execution contexts can be held.

        The enclave's own capacity check (``EC_MODEL_INF_BATCH`` refuses
        to overflow the context table) stays the backstop; this keeps a
        batch from racing concurrent singles into that error.
        """
        capacity = self.enclave.config.tcs_count
        deadline = time.monotonic() + timeout_s
        with self._batch_cv:
            while self._contexts_in_flight + n > capacity:
                if not self.enclave.alive:
                    raise EnclaveError(f"{self.enclave.enclave_id} is destroyed")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise EnclaveError(
                        f"timed out waiting for {n} free execution contexts"
                    )
                self._batch_cv.wait(remaining)
            self._contexts_in_flight += n

    def _release_contexts(self, n: int) -> None:
        with self._batch_cv:
            self._contexts_in_flight -= n
            self._batch_cv.notify_all()

    def _note_served(self, uid: str, model_id: str) -> None:
        """Remember the pair that just served: the next one may be hot.

        Only meaningful when the build caches keys -- without the key
        cache no request is ever hot, so leading a batch would spend the
        window for nothing.
        """
        if self._batch_policy is None:
            return
        self._hot_pair = (uid, model_id) if self._isolation.key_cache else None

    # -- the continuous-batching stream plane ---------------------------------------

    def _handle_stream(self, stream: InferenceStream, slot: int) -> None:
        """Admit one stream to the continuous-batching plane.

        The first stream's worker becomes the decode **leader** and
        drives the group's step loop until the group is empty; a later
        worker whose stream matches the running group's ``<uid,
        model_id>`` pair hands it over as a *joiner* and returns to the
        pool -- the member is absorbed between decode steps without
        stopping anyone.  Without an armed batch policy every stream
        leads a group of one: the per-request decoding baseline.
        """
        policy = self._batch_policy
        cap = policy.max_batch if policy is not None else 1
        with self._batch_cv:
            group = self._stream_group
            if (
                group is not None
                and not group.closed
                and (group.uid, group.model_id) == (stream.uid, stream.model_id)
                and len(group.members) + len(group.joiners) < cap
            ):
                group.joiners.append(stream)
                self._batch_cv.notify_all()
                return
            group = _StreamGroup(stream)
            if cap > 1:
                self._stream_group = group
        self._lead_stream_group(group, slot)

    def _lead_stream_group(self, group: _StreamGroup, slot: int) -> None:
        """Leader side of continuous batching: open joiners, step members.

        Each iteration absorbs any waiting joiners first (prefill + first
        frame immediately -- time-to-first-token never waits on a
        window), drops cancelled members (``EC_STREAM_CLOSE`` releases
        the enclave KV context before ``RequestCancelled`` surfaces),
        then advances every live stream one token through a single
        ``EC_STREAM_STEP`` paced to the policy's amortised batch cost.
        A leader crash at the ``semirt:batch`` fault site fails every
        member and joiner -- followers never hang on a dead leader.
        """
        try:
            while True:
                with self._batch_cv:
                    joiners, group.joiners = group.joiners, []
                for stream in joiners:
                    self._open_stream_member(group, stream, slot)
                self._drop_cancelled_streams(group, slot)
                if not group.members:
                    with self._batch_cv:
                        if group.joiners:
                            continue  # a joiner raced in: keep leading
                        return
                if self._injector is not None and self._injector.crash_enclave(
                    "semirt:batch"
                ):
                    # the leader dies mid-decode: members must never hang
                    self.destroy()
                    self._fail_stream_group(
                        group,
                        FaultInjected("semirt enclave crashed mid-stream step"),
                    )
                    return
                try:
                    self._step_stream_group(group, slot)
                except BaseException as exc:  # noqa: BLE001 - relayed to members
                    self._fail_stream_group(group, exc)
                    return
        finally:
            with self._batch_cv:
                group.closed = True
                if self._stream_group is group:
                    self._stream_group = None
                stranded, group.joiners = group.joiners, []
            # a joiner that slipped in while we were closing must not
            # hang: hand it back to the scheduler so another worker
            # leads a fresh group for it
            for stream in stranded:
                if not self.enclave.alive:
                    stream._fail(
                        EnclaveError(f"{self.enclave.enclave_id} is destroyed")
                    )
                    continue
                try:
                    self._queue.put_nowait(stream)
                except queue_module.Full:
                    stream._fail(
                        QueueFull(
                            "admission queue full while re-queuing a stream joiner"
                        )
                    )

    def _open_stream_member(
        self, group: _StreamGroup, stream: InferenceStream, slot: int
    ) -> None:
        """Open one stream in-enclave (prefill) and push its first frame."""
        stream.tcs_slot = slot
        if stream._cancel_requested():
            # never reached the enclave: no stream context to close
            stream._fail(
                RequestCancelled(
                    f"stream for model {stream.model_id!r} was cancelled"
                )
            )
            return
        attach = (
            self.tracer.attach(stream._parent)
            if self.tracer is not None and stream._parent is not None
            else nullcontext()
        )
        with attach:
            started = time.monotonic()
            started_cpu = time.thread_time()
            try:
                with maybe_span(
                    self.tracer,
                    "ecall:EC_MODEL_INF_STREAM",
                    model_id=stream.model_id,
                    tcs_slot=slot,
                    ticket=stream.ticket,
                    queue_wait=stream.queue_wait,
                ):
                    ticket, frame, done = self.enclave.ecall(
                        "EC_MODEL_INF_STREAM",
                        stream._enc_request,
                        stream.uid,
                        stream.model_id,
                    )
                    # prefill costs one full service-time floor (it runs
                    # the whole prompt), whatever the group size
                    self._pace(started, started_cpu)
            except BaseException as exc:  # noqa: BLE001 - this stream only
                stream._fail(exc)
                return
        stream._push(frame)
        if done:
            stream._finish()
        else:
            with self._batch_cv:
                group.members.append((ticket, stream))
        self._note_served(stream.uid, stream.model_id)

    def _drop_cancelled_streams(self, group: _StreamGroup, slot: int) -> None:
        """Release cancelled members' enclave contexts, then drop them."""
        live: List[Tuple[int, InferenceStream]] = []
        for ticket, stream in group.members:
            if not stream._cancel_requested():
                live.append((ticket, stream))
                continue
            try:
                with maybe_span(
                    self.tracer, "ecall:EC_STREAM_CLOSE", tcs_slot=slot
                ):
                    self.enclave.ecall("EC_STREAM_CLOSE", ticket)
            except BaseException:  # noqa: BLE001 - enclave died; context gone with it
                pass
            stream._fail(
                RequestCancelled(
                    f"stream for model {stream.model_id!r} was cancelled"
                )
            )
        with self._batch_cv:
            group.members = live

    def _step_stream_group(self, group: _StreamGroup, slot: int) -> None:
        """Advance every live member one token via one ``EC_STREAM_STEP``."""
        members = list(group.members)
        tickets = [ticket for ticket, _ in members]
        size = len(members)
        floor = self.scheduler.paced_service_s
        leader = members[0][1]
        attach = (
            self.tracer.attach(leader._parent)
            if self.tracer is not None and leader._parent is not None
            else nullcontext()
        )
        with attach:
            started = time.monotonic()
            started_cpu = time.thread_time()
            with maybe_span(
                self.tracer,
                "ecall:EC_STREAM_STEP",
                model_id=group.model_id,
                tcs_slot=slot,
                batch_size=size,
                amortised_s=(
                    self._batch_policy.amortised_s(floor, size)
                    if floor is not None and self._batch_policy is not None
                    else None
                ),
            ):
                results = self.enclave.ecall("EC_STREAM_STEP", tickets)
                self._pace(started, started_cpu, size=size)
        live: List[Tuple[int, InferenceStream]] = []
        for (ticket, stream), (frame, done) in zip(members, results):
            stream._push(frame)
            if done:
                stream._finish()
            else:
                live.append((ticket, stream))
        with self._batch_cv:
            group.members = live
        self._note_served(group.uid, group.model_id)

    def _fail_stream_group(
        self, group: _StreamGroup, error: BaseException
    ) -> None:
        """Fail every member and joiner of a group (leader died mid-decode)."""
        with self._batch_cv:
            members, group.members = group.members, []
            joiners, group.joiners = group.joiners, []
        for _, stream in members:
            stream._fail(error)
        for stream in joiners:
            stream._fail(error)

    # -- the single-request ECALL cycle ---------------------------------------------

    def _serve(self, future: InferenceFuture, slot: int) -> bytes:
        """Drive the three-ECALL cycle for one request on one TCS slot."""
        reserve = self._batch_policy is not None
        if reserve:
            self._reserve_contexts(1)
        try:
            attach = (
                self.tracer.attach(future._parent)
                if self.tracer is not None and future._parent is not None
                else nullcontext()
            )
            with attach:
                started = time.monotonic()
                started_cpu = time.thread_time()
                with maybe_span(
                    self.tracer,
                    "ecall:EC_MODEL_INF",
                    model_id=future.model_id,
                    tcs_slot=slot,
                    queue_wait=future.queue_wait,
                ):
                    handle = self.enclave.ecall(
                        "EC_MODEL_INF", future._enc_request, future.uid,
                        future.model_id,
                    )
                    self._pace(started, started_cpu)
                if future._cancel_requested():
                    # cancelled after the context was created: clear it
                    # before RequestCancelled surfaces (the cancel() API
                    # contract), never fetching the output
                    with maybe_span(
                        self.tracer, "ecall:EC_CLEAR_EXEC_CTX", tcs_slot=slot
                    ):
                        self.enclave.ecall("EC_CLEAR_EXEC_CTX", handle)
                    raise RequestCancelled(
                        f"request for model {future.model_id!r} was cancelled"
                    )
                with maybe_span(self.tracer, "ecall:EC_GET_OUTPUT", tcs_slot=slot):
                    output = self.enclave.ecall("EC_GET_OUTPUT", handle)
                with maybe_span(self.tracer, "ecall:EC_CLEAR_EXEC_CTX", tcs_slot=slot):
                    self.enclave.ecall("EC_CLEAR_EXEC_CTX", handle)
        finally:
            if reserve:
                self._release_contexts(1)
        self._note_served(future.uid, future.model_id)
        return output

    def _pace(self, started: float, started_cpu: float, size: int = 1) -> None:
        """Spend the remainder of the configured service-time floor.

        A batch of ``size`` is paced to the policy's sub-linear batch
        cost rather than ``size`` full floors -- that amortisation *is*
        the modelled win.  With ``paced_busy`` the floor is *thread CPU
        time*: the worker burns whatever the ECALL's real work has not
        already consumed, so concurrent busy-paced workers genuinely
        serialise on the GIL (the stand-in for a single core) -- the
        compute-bound regime micro-batching is for.  Otherwise the floor
        is wall time spent sleeping, releasing the GIL so paced singles
        overlap across TCS slots (the core-rich regime
        ``repro concurrency`` measures).
        """
        floor = self.scheduler.paced_service_s
        if floor is None:
            return
        if size > 1:
            floor = self._batch_policy.batch_cost_s(floor, size)
        if self.scheduler.paced_busy:
            target = started_cpu + floor
            while time.thread_time() < target:
                pass
        else:
            remaining = floor - (time.monotonic() - started)
            if remaining > 0:
                time.sleep(remaining)

    # -- the action interface ------------------------------------------------------

    def submit(self, enc_request: bytes, uid: str, model_id: str) -> InferenceFuture:
        """Admit one request to the TCS scheduler; returns immediately.

        Returns an :class:`InferenceFuture`; resolve it with
        ``future.result(timeout_s=...)``, poll with ``future.done()``, or
        drop it with ``future.cancel()``.  Raises
        :class:`~repro.errors.QueueFull` when the admission queue is at
        its configured depth (backpressure), and
        :class:`~repro.errors.FaultInjected` when the attached fault
        injector crashes the enclave at this site.
        """
        if self._injector is not None and self._injector.crash_enclave("semirt"):
            # the instance dies mid-ECALL: all warm/hot state (model,
            # key cache, runtimes, KeyService channels) is gone and the
            # next request must take the cold path on a fresh enclave
            self.destroy()
            raise FaultInjected("semirt enclave crashed mid-ECALL")
        if not self.enclave.alive:
            raise EnclaveError(f"{self.enclave.enclave_id} is destroyed")
        self._ensure_workers()
        future = InferenceFuture(enc_request, uid, model_id)
        future.ticket = next(self._ticket_ids)
        if self.tracer is not None:
            future._parent = self.tracer.current_span()
        try:
            self._queue.put_nowait(future)
        except queue_module.Full:
            raise QueueFull(
                f"admission queue full ({self.scheduler.queue_depth} waiting); "
                "drain results or raise SchedulerConfig.queue_depth"
            ) from None
        return future

    def open_stream(
        self, enc_request: bytes, uid: str, model_id: str
    ) -> InferenceStream:
        """Admit one autoregressive stream; returns immediately.

        The streaming sibling of :meth:`submit`: the sealed prompt (a
        ``STREAM_AAD`` payload from
        :meth:`~repro.core.client.UserClient.encrypt_stream_request`)
        joins the continuous-batching plane and the returned
        :class:`InferenceStream` yields sealed token frames as they
        decode.  Backpressure (:class:`~repro.errors.QueueFull`) and the
        ``semirt`` crash fault site behave exactly as for :meth:`submit`.
        """
        if self._injector is not None and self._injector.crash_enclave("semirt"):
            self.destroy()
            raise FaultInjected("semirt enclave crashed mid-ECALL")
        if not self.enclave.alive:
            raise EnclaveError(f"{self.enclave.enclave_id} is destroyed")
        self._ensure_workers()
        stream = InferenceStream(enc_request, uid, model_id)
        stream.ticket = next(self._ticket_ids)
        if self.tracer is not None:
            stream._parent = self.tracer.current_span()
        try:
            self._queue.put_nowait(stream)
        except queue_module.Full:
            raise QueueFull(
                f"admission queue full ({self.scheduler.queue_depth} waiting); "
                "drain results or raise SchedulerConfig.queue_depth"
            ) from None
        return stream

    def result(
        self,
        future: InferenceFuture,
        timeout_s: Optional[float] = None,
    ) -> bytes:
        """Block for a submitted request's sealed output.

        Convenience composition over the :class:`InferenceFuture`
        returned by :meth:`submit` (the raw int-ticket surface of the
        pre-futures API is gone -- futures are the only handle).
        """
        if not isinstance(future, InferenceFuture):
            raise InvocationError(
                "SemirtHost.result takes the InferenceFuture returned by "
                "submit(); the raw int-ticket surface was removed"
            )
        return future.result(timeout_s)

    def infer(self, enc_request: bytes, uid: str, model_id: str) -> bytes:
        """Serve one request synchronously: submit + result."""
        return self.submit(enc_request, uid, model_id).result()

    def invalidate_keys(
        self, uid: Optional[str] = None, model_id: Optional[str] = None
    ) -> int:
        """Relay a revocation/re-grant to the enclave's key memo.

        Drives ``EC_INVALIDATE_KEYS``; ``None`` matches everything.
        Returns how many memoised entries the enclave dropped.
        """
        return self.enclave.ecall("EC_INVALIDATE_KEYS", uid, model_id)

    def destroy(self) -> None:
        """Tear down the enclave and the scheduler (sandbox reclaim).

        Queued-but-unserved tickets fail with
        :class:`~repro.errors.EnclaveError`; tickets already inside an
        ECALL run to completion against the dying enclave and fail (or
        finish) on their own.
        """
        self.enclave.destroy()
        with self._batch_cv:
            # wake any batch leader in its window wait and any worker
            # blocked on a context reservation; both re-check liveness
            self._batch_cv.notify_all()
        with self._workers_lock:
            workers, self._workers = self._workers, []
        # fail whatever is still queued *before* posting the shutdown
        # sentinels, so a worker never exits with live tickets behind it
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            item._fail(
                EnclaveError(f"{self.enclave.enclave_id} is destroyed")
            )
        for _ in workers:
            self._queue.put(_SHUTDOWN)
