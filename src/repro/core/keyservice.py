"""KeyService: trust establishment and key provisioning (Algorithm 1).

KeyService is the always-on enclave bridging users and serverless
instances.  It stores four data sets *inside the enclave*:

- ``KS_I``: ``<id, K_id>`` -- long-term identity keys of owners/users,
  where ``id = SHA256(K_id)``;
- ``KS_M``: ``<M_oid, K_M>`` -- model decryption keys;
- ``KS_R``: ``<M_oid || E_S || uid, K_R>`` -- request keys, released only
  to enclave identity ``E_S`` serving model ``M_oid`` for user ``uid``;
- ``AC_M``: ``<M_oid || E_S || uid>`` -- the owner's access grants.

Clients reach it over RA-TLS channels terminated inside the enclave
(``EC_HANDSHAKE``); all operations arrive as encrypted messages on those
channels (``EC_REQUEST``).  ``KEY_PROVISIONING`` additionally requires
the channel to be mutually attested, and matches the requesting enclave's
MRENCLAVE against the access-control records -- the core of the paper's
security argument.

Beyond Algorithm 1 we implement ``REVOKE_ACCESS`` (the inverse of
``GRANT_ACCESS``), a natural extension the healthcare example exercises.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Set, Tuple

from repro.core import wire
from repro.crypto.gcm import AESGCM, SessionCipher
from repro.crypto.hashes import sha256
from repro.errors import (
    AccessDenied,
    EnclaveError,
    SealingError,
    TransportError,
    UnknownIdentity,
)
from repro.obs.tracer import maybe_span
from repro.sgx.attestation import AttestationService, QuotePolicy, Report
from repro.sgx.enclave import (
    Enclave,
    EnclaveBuildConfig,
    EnclaveCode,
    ecall,
)
from repro.sgx.measurement import (
    EnclaveMeasurement,
    code_identity_of,
    measure,
)
from repro.sgx.platform import SgxPlatform
from repro.sgx.ratls import (
    HandshakeOffer,
    RatlsPeer,
    SecureChannel,
    respond_handshake,
)

#: default build configuration of the KeyService enclave
KEYSERVICE_CONFIG = EnclaveBuildConfig(memory_bytes=32 * 1024 * 1024, tcs_count=8)


def expected_keyservice_measurement(
    config: EnclaveBuildConfig = KEYSERVICE_CONFIG,
) -> EnclaveMeasurement:
    """Derive ``E_K`` independently, from the code and config alone.

    This is what the model owner and users compute before trusting a
    deployment (Section III's workflow, step 1).
    """
    build_view = dict(config.as_mapping())
    build_view["settings"] = dict(KeyServiceEnclaveCode.SETTINGS)
    return measure(code_identity_of(KeyServiceEnclaveCode), build_view)


class KeyServiceEnclaveCode(EnclaveCode):
    """The trusted half of KeyService (runs inside the enclave)."""

    SETTINGS = {"service": "keyservice", "protocol": 1}

    def __init__(self, attestation: AttestationService, sealing=None) -> None:
        super().__init__()
        self._attestation = attestation
        # the platform's sealing-key derivation (None => no sealed
        # checkpoints); deliberately NOT part of settings(): sealing
        # availability is a platform property, not a code identity
        self._sealing = sealing
        self._ks_i: Dict[str, bytes] = {}
        self._ks_m: Dict[str, bytes] = {}
        self._ks_r: Dict[Tuple[str, str, str], bytes] = {}
        self._ac_m: Set[Tuple[str, str, str]] = set()
        self._channels: Dict[int, SecureChannel] = {}
        self._channel_peer: Dict[int, Optional[Report]] = {}
        self._channel_ids = itertools.count(1)
        # in-enclave per-principal identity ciphers: repeat operations
        # from one principal reuse the derived AES-GCM state instead of
        # rebuilding the key schedule + GHASH tables per op.  Built
        # directly (not via the process-wide AESGCM.derive cache) so
        # enclave-held key material never leaves the enclave object.
        self._identity_ciphers: Dict[str, SessionCipher] = {}

    # -- ECALL surface ------------------------------------------------------------

    @ecall
    def EC_HANDSHAKE(self, offer_wire: dict) -> dict:
        """Terminate an RA-TLS handshake inside the enclave.

        The client's quote, when present, is verified *inside* the enclave
        (Appendix A); the verified report is pinned to the channel so
        ``KEY_PROVISIONING`` can read the requester's identity ``E_S``.
        """
        client_offer = HandshakeOffer.from_wire(offer_wire)
        peer = RatlsPeer(
            "keyservice",
            enclave=self.enclave,
            quoter=lambda report: self.ocall("OC_GET_QUOTE", report),
        )
        policy = QuotePolicy() if client_offer.quote is not None else None
        server_offer, channel, client_report = respond_handshake(
            peer, client_offer, verifier=self._attestation, server_requires=policy
        )
        channel_id = next(self._channel_ids)
        self._channels[channel_id] = channel
        self._channel_peer[channel_id] = client_report
        return {"channel_id": channel_id, "server_offer": server_offer.to_wire()}

    @ecall
    def EC_REQUEST(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Process one encrypted operation on an established channel."""
        channel = self._channels.get(channel_id)
        if channel is None:
            raise EnclaveError(f"unknown channel {channel_id}")
        message = wire.loads(channel.recv(ciphertext))
        response = self._dispatch(channel_id, message)
        return channel.send(wire.dumps(response))

    @ecall
    def EC_SEAL_STATE(self) -> bytes:
        """Checkpoint the four key stores, sealed to this enclave identity.

        RA-TLS channels are deliberately *not* checkpointed: sessions
        die with the enclave, and clients re-attest on reconnect -- the
        recovery path :meth:`SemirtEnclaveCode._fetch_keys` already
        implements.
        """
        if self._sealing is None:
            raise SealingError("this platform provides no sealing service")
        state = {
            "ks_i": dict(self._ks_i),
            "ks_m": dict(self._ks_m),
            "ks_r": [[m, e, u, key] for (m, e, u), key in self._ks_r.items()],
            "ac_m": [[m, e, u] for (m, e, u) in sorted(self._ac_m)],
        }
        return self._sealing.seal(self.enclave, wire.dumps(state))

    @ecall
    def EC_RESTORE_STATE(self, sealed: bytes) -> int:
        """Load a sealed checkpoint produced by :meth:`EC_SEAL_STATE`.

        Unsealing enforces the identity binding: a blob sealed by a
        different enclave code, build, or platform fails authentication.
        Returns the number of recovered principals.
        """
        if self._sealing is None:
            raise SealingError("this platform provides no sealing service")
        state = wire.loads(self._sealing.unseal(self.enclave, sealed))
        self._ks_i = dict(state["ks_i"])
        self._identity_ciphers.clear()
        self._ks_m = dict(state["ks_m"])
        self._ks_r = {(m, e, u): key for m, e, u, key in state["ks_r"]}
        self._ac_m = {(m, e, u) for m, e, u in state["ac_m"]}
        return len(self._ks_i)

    # -- operation dispatch ---------------------------------------------------------

    def _dispatch(self, channel_id: int, message: dict) -> dict:
        handlers = {
            "register": self._op_register,
            "add_model_key": self._op_add_model_key,
            "grant_access": self._op_grant_access,
            "revoke_access": self._op_revoke_access,
            "add_req_key": self._op_add_req_key,
            "provision": self._op_provision,
        }
        op = message.get("op")
        handler = handlers.get(op)
        if handler is None:
            return {"ok": False, "error": f"unknown operation {op!r}"}
        try:
            return {"ok": True, **handler(channel_id, message)}
        except (AccessDenied, UnknownIdentity) as exc:
            return {"ok": False, "error": str(exc)}

    def _identity_cipher(self, principal_id: str) -> SessionCipher:
        key = self._ks_i.get(principal_id)
        if key is None:
            raise UnknownIdentity(f"principal {principal_id[:12]}... is not registered")
        cipher = self._identity_ciphers.get(principal_id)
        if cipher is None:
            cipher = SessionCipher(AESGCM(key))
            self._identity_ciphers[principal_id] = cipher
        return cipher

    @staticmethod
    def _open_authenticated(cipher: SessionCipher, blob: bytes, op: str) -> dict:
        """Open a payload sealed under a principal's long-term key.

        The AAD pins the operation name, so a recorded ``add_req_key``
        payload cannot be replayed as a ``grant_access``.
        """
        try:
            return wire.loads(cipher.unseal(blob, aad=op.encode()))
        except Exception as exc:
            raise AccessDenied(
                f"payload for {op!r} is not authenticated by the claimed principal"
            ) from exc

    # USER_REGISTRATION (Algorithm 1, lines 5-8)
    def _op_register(self, channel_id: int, message: dict) -> dict:
        identity_key = message["identity_key"]
        principal_id = sha256(identity_key).hex()
        self._ks_i[principal_id] = identity_key
        return {"id": principal_id}

    # ADD_MODEL_KEY (lines 9-12)
    def _op_add_model_key(self, channel_id: int, message: dict) -> dict:
        cipher = self._identity_cipher(message["oid"])
        payload = self._open_authenticated(cipher, message["blob"], "add_model_key")
        self._ks_m[payload["model_id"]] = payload["model_key"]
        return {"model_id": payload["model_id"]}

    # GRANT_ACCESS (lines 13-16)
    def _op_grant_access(self, channel_id: int, message: dict) -> dict:
        cipher = self._identity_cipher(message["oid"])
        payload = self._open_authenticated(cipher, message["blob"], "grant_access")
        record = (payload["model_id"], payload["enclave_id"], payload["uid"])
        self._ac_m.add(record)
        return {}

    # REVOKE_ACCESS (extension: the inverse of GRANT_ACCESS)
    def _op_revoke_access(self, channel_id: int, message: dict) -> dict:
        cipher = self._identity_cipher(message["oid"])
        payload = self._open_authenticated(cipher, message["blob"], "revoke_access")
        record = (payload["model_id"], payload["enclave_id"], payload["uid"])
        self._ac_m.discard(record)
        return {}

    # ADD_REQ_KEY (lines 17-20)
    def _op_add_req_key(self, channel_id: int, message: dict) -> dict:
        cipher = self._identity_cipher(message["uid"])
        payload = self._open_authenticated(cipher, message["blob"], "add_req_key")
        record = (payload["model_id"], payload["enclave_id"], message["uid"])
        self._ks_r[record] = payload["request_key"]
        return {}

    # KEY_PROVISIONING (lines 21-26)
    def _op_provision(self, channel_id: int, message: dict) -> dict:
        report = self._channel_peer.get(channel_id)
        if report is None:
            raise AccessDenied(
                "key provisioning requires a mutually attested channel"
            )
        enclave_id = report.mrenclave.value
        record = (message["model_id"], enclave_id, message["uid"])
        if record not in self._ac_m:
            raise AccessDenied(
                "the model owner has not granted this enclave/user combination"
            )
        if record not in self._ks_r:
            raise AccessDenied(
                "the user has not released a request key for this enclave"
            )
        model_key = self._ks_m.get(message["model_id"])
        if model_key is None:
            raise AccessDenied("no decryption key stored for this model")
        return {"model_key": model_key, "request_key": self._ks_r[record]}

    # -- introspection used by tests ---------------------------------------------------

    @property
    def registered_principals(self) -> int:
        return len(self._ks_i)


class KeyServiceHost:
    """Untrusted host process of KeyService.

    Launches the enclave on an SGX platform, wires the quote OCALL to the
    platform's quoting enclave, and relays opaque byte blobs between the
    network and the enclave -- it can observe traffic but never keys.
    """

    def __init__(
        self,
        platform: SgxPlatform,
        attestation: AttestationService,
        config: EnclaveBuildConfig = KEYSERVICE_CONFIG,
        tracer=None,
    ) -> None:
        self.platform = platform
        self.attestation = attestation
        self.config = config
        self.tracer = tracer
        self._down = False
        self._launch()

    def _launch(self) -> None:
        code = KeyServiceEnclaveCode(
            self.attestation, sealing=self.platform.sealing
        )
        self.enclave: Enclave = self.platform.create_enclave(code, self.config)
        self.enclave.register_ocall("OC_GET_QUOTE", self.platform.quote)
        self.code = code

    @property
    def measurement(self) -> EnclaveMeasurement:
        """The deployed ``E_K`` (clients must verify it independently)."""
        return self.enclave.measurement

    # -- lifecycle (availability model) -------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the host answers; False after :meth:`stop`."""
        return not self._down and self.enclave.alive

    def snapshot(self) -> bytes:
        """A sealed checkpoint of the enclave's key stores.

        The host only ever holds ciphertext: the blob is sealed inside
        the enclave to its own identity on this platform.
        """
        return self.enclave.ecall("EC_SEAL_STATE")

    def stop(self) -> None:
        """Crash-stop the shard: the enclave dies, requests get refused.

        All in-enclave state -- key stores *and* live RA-TLS channels --
        is gone; only a sealed :meth:`snapshot` taken earlier survives.
        """
        self._down = True
        self.enclave.destroy()

    def restart(self, sealed: Optional[bytes] = None) -> None:
        """Bring a stopped shard back, optionally from a sealed checkpoint.

        A fresh enclave (same code, same build, hence the same ``E_K``)
        is launched; with ``sealed`` it recovers the checkpointed key
        stores through the platform's sealing service.  Clients and
        SeMIRT instances must re-attest: their old channels are invalid,
        which the one-shot re-attestation path handles transparently.
        """
        if self.enclave.alive:
            self.enclave.destroy()
        self._launch()
        self._down = False
        if sealed is not None:
            self.enclave.ecall("EC_RESTORE_STATE", sealed)

    def _refuse_if_down(self) -> None:
        if not self.alive:
            raise TransportError(
                f"keyservice on {self.platform.platform_id} is down"
            )

    # network-facing endpoints (untrusted relay) ---------------------------------

    def handshake(self, offer_wire: dict) -> dict:
        """Relay a handshake offer into the enclave (untrusted pass-through)."""
        self._refuse_if_down()
        with maybe_span(self.tracer, "keyservice.handshake"):
            return self.enclave.ecall("EC_HANDSHAKE", offer_wire)

    def request(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Relay an encrypted operation into the enclave (untrusted pass-through).

        Only the channel id is recorded on the span: the operation name
        travels inside the ciphertext, so even the host's own telemetry
        cannot see which KeyService operation a client performed.
        """
        self._refuse_if_down()
        with maybe_span(self.tracer, "keyservice.request", channel_id=channel_id):
            return self.enclave.ecall("EC_REQUEST", channel_id, ciphertext)
