"""Simulation actors: SeSeMI and both baselines as container runtimes.

These are the performance twins of the functional components.  Each actor
implements the :class:`~repro.serverless.container.ActionRuntime`
interface, shares the invocation-path logic of
:mod:`repro.core.stages`, and charges virtual time from the calibrated
:class:`~repro.core.costs.CostModel`:

- :class:`SemirtSimActor` -- SeSeMI: enclave created once per container,
  keys / model / runtimes cached (cold / warm / hot paths), multiple
  requests per enclave (one per TCS);
- :class:`IsoReuseSimActor` -- the S-FaaS / Clemmys design: enclave and
  keys are reused, but the model and runtime are rebuilt per request;
- :class:`NativeSimActor` -- existing sandbox runtimes: a fresh enclave
  per invocation, full cold path every time;
- :class:`UntrustedSimActor` -- no SGX at all (Figure 9/18's comparison).

Contention is physical, not analytic: quote generation serialises on the
node's quoting enclave, inference occupies node cores, enclave pages
commit against the node's EPC, and concurrent launches slow each other
down -- so the knees in the figures emerge from the simulation rather
than being painted in.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core.costs import CostModel
from repro.core.stages import (
    InvocationKind,
    SemirtCacheState,
    Stage,
    plan_invocation,
)
from repro.errors import InvocationError
from repro.mlrt.zoo import ModelProfile
from repro.serverless.container import ActionRuntime, ContainerContext
from repro.serverless.action import Request

_actor_ids = itertools.count(1)


@dataclass(frozen=True)
class ServableModel:
    """One model an actor can serve: paper profile + framework binding."""

    profile: ModelProfile
    framework: str

    @property
    def enclave_bytes(self) -> int:
        return self.profile.enclave_bytes(self.framework)

    @property
    def buffer_bytes(self) -> int:
        return self.profile.buffer_bytes(self.framework)


class _SgxActorBase(ActionRuntime):
    """Shared stage helpers for the SGX-backed actors."""

    def __init__(
        self,
        models: Dict[str, ServableModel],
        cost: CostModel,
        tcs_count: int = 1,
    ) -> None:
        if not models:
            raise InvocationError("an actor needs at least one servable model")
        self.models = models
        self.cost = cost
        self.tcs_count = tcs_count
        self.actor_id = f"actor-{next(_actor_ids)}"
        self.startup_stage_seconds: Dict[str, float] = {}

    # -- sizing -----------------------------------------------------------------

    def enclave_total_bytes(self) -> int:
        """Enclave size: the largest servable model plus extra TCS buffers.

        The base enclave config (Appendix D) already covers the model and
        one runtime buffer; each extra TCS adds one runtime buffer.
        """
        base = max(m.enclave_bytes for m in self.models.values())
        extra = max(m.buffer_bytes for m in self.models.values())
        return base + (self.tcs_count - 1) * extra

    def _servable(self, model_id: str) -> ServableModel:
        try:
            return self.models[model_id]
        except KeyError:
            raise InvocationError(
                f"{self.actor_id} cannot serve model {model_id!r}"
            ) from None

    # -- tracing ----------------------------------------------------------------

    def _traced_stage(self, ctx: ContainerContext, stage: Stage, gen, **attrs):
        """Run a stage generator under a span (no-op when untraced).

        The span reads the simulation clock, so its duration equals the
        virtual-time seconds the stage helper reports -- the span trees
        and the ``stage_seconds`` accounting can never drift apart.
        """
        if ctx.tracer is None or ctx.span is None:
            result = yield from gen
            return result
        span = ctx.tracer.start_span(
            f"stage:{stage.value}",
            parent=ctx.span,
            stage=stage.value,
            actor=self.actor_id,
            epc_slowdown=ctx.node.sgx.epc.access_slowdown(),
            **attrs,
        )
        try:
            result = yield from gen
        except BaseException:
            span.end(status="error")
            raise
        span.end()
        return result

    # -- stage generators (each yields sim events, returns seconds spent) ---------

    def _stage_enclave_init(self, ctx: ContainerContext, nbytes: int,
                            epc_key: Optional[str] = None):
        """Launch an enclave: queue for a launch slot, then pay init time.

        Returns launch-to-ready seconds (queueing included), which is what
        the per-enclave init latency of Figure 15 measures.
        """
        node = ctx.node
        start = ctx.sim.now
        claim = node.launch_slots.request()
        yield claim
        node.enclaves_launching += 1
        try:
            yield ctx.sim.timeout(node.enclave_init_time(nbytes))
        finally:
            node.enclaves_launching -= 1
            node.launch_slots.release(claim)
        node.sgx.epc.allocate(epc_key or self.actor_id, nbytes)
        duration = ctx.sim.now - start
        self.startup_stage_seconds[Stage.ENCLAVE_INIT.value] = duration
        return duration

    def _stage_key_retrieval(self, ctx: ContainerContext, session_reused: bool = False):
        """KEY_PROVISIONING: full mutual RA-TLS, or one RPC on a live session.

        The first retrieval quotes (serialising on the node's quoting
        enclave) and attests both ways; once the channel to KeyService
        exists, later fetches are a single encrypted round trip.
        """
        if session_reused:
            duration = self.cost.key_retrieval_session_reused_s()
            yield ctx.sim.timeout(duration)
            return duration
        start = ctx.sim.now
        claim = ctx.node.quoting.request()
        yield claim
        try:
            yield ctx.sim.timeout(ctx.node.sgx.profile.quote_base_s)
        finally:
            ctx.node.quoting.release(claim)
        fixed = self.cost.key_fetch_fixed_s + 2 * ctx.node.sgx.profile.verify_s
        yield ctx.sim.timeout(fixed)
        return ctx.sim.now - start

    def _stage_model_load(self, ctx: ContainerContext, servable: ServableModel):
        """Download the encrypted artifact over the shared storage link.

        The link serialises transfers, so designs that reload the model
        per request (Iso-reuse, Native) saturate it at moderate request
        rates -- the effect behind the paper's multi-node results.
        """
        start = ctx.sim.now
        claim = ctx.node.storage_link.request()
        yield claim
        try:
            yield ctx.sim.timeout(self.cost.model_load_s(servable.profile.model_bytes))
        finally:
            ctx.node.storage_link.release(claim)
        return ctx.sim.now - start

    def _stage_model_decrypt(self, ctx: ContainerContext, servable: ServableModel):
        slowdown = ctx.node.sgx.epc.access_slowdown()
        duration = self.cost.model_decrypt_s(servable.profile.model_bytes, slowdown)
        yield ctx.sim.timeout(duration)
        return duration

    def _stage_runtime_init(self, ctx: ContainerContext, servable: ServableModel):
        slowdown = ctx.node.sgx.epc.access_slowdown()
        duration = self.cost.runtime_init_s(
            servable.profile, servable.framework, slowdown
        )
        yield ctx.sim.timeout(duration)
        return duration

    def _stage_exec(self, ctx: ContainerContext, servable: ServableModel):
        """Model execution holds one node core; EPC pressure stretches it."""
        start = ctx.sim.now
        claim = ctx.node.cores.request()
        yield claim
        try:
            slowdown = ctx.node.sgx.epc.access_slowdown()
            duration = self.cost.model_exec_s(
                servable.profile, servable.framework, slowdown
            )
            yield ctx.sim.timeout(duration)
        finally:
            ctx.node.cores.release(claim)
        return ctx.sim.now - start

    def _stage_fixed(self, ctx: ContainerContext, seconds: float):
        yield ctx.sim.timeout(seconds)
        return seconds


class SemirtSimActor(_SgxActorBase):
    """SeSeMI's SeMIRT container: cold / warm / hot invocation paths."""

    def __init__(
        self,
        models: Dict[str, ServableModel],
        cost: CostModel,
        tcs_count: int = 1,
        key_cache: bool = True,
        reuse_runtime: bool = True,
    ) -> None:
        super().__init__(models, cost, tcs_count)
        self.key_cache = key_cache
        self.reuse_runtime = reuse_runtime
        self.state = SemirtCacheState()
        self._ks_session_live = False
        #: idle per-thread runtimes available per model id
        self._idle_runtimes: Dict[str, int] = {}
        self._switch_lock = None  # created lazily (needs the sim)

    @property
    def memory_bytes(self) -> int:
        return self.enclave_total_bytes()

    def startup(self, ctx: ContainerContext):
        """Sandbox started by the platform; we add the enclave launch."""
        if self._switch_lock is None:
            from repro.sim.resources import Resource

            self._switch_lock = Resource(ctx.sim, 1, name=f"{self.actor_id}.switch")
        yield from self._traced_stage(
            ctx,
            Stage.ENCLAVE_INIT,
            self._stage_enclave_init(ctx, self.enclave_total_bytes()),
        )
        self.state.enclave_ready = True

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request along the cold/warm/hot path of Algorithm 2."""
        servable = self._servable(request.model_id)
        plan = plan_invocation(
            self.state,
            request.model_id,
            request.user_id,
            key_cache_enabled=self.key_cache,
            reuse_runtime=self.reuse_runtime,
        )
        stages: Dict[str, float] = {}
        if plan.needs(Stage.KEY_RETRIEVAL):
            stages[Stage.KEY_RETRIEVAL.value] = yield from self._traced_stage(
                ctx,
                Stage.KEY_RETRIEVAL,
                self._stage_key_retrieval(ctx, session_reused=self._ks_session_live),
                session_reused=self._ks_session_live,
            )
            self._ks_session_live = True
            if self.key_cache:
                self.state.key_cache = (request.model_id, request.user_id)
        # Model switch happens under a lock: one loader, others wait + reuse.
        claim = self._switch_lock.request()
        yield claim
        try:
            if self.state.loaded_model != request.model_id:
                stages[Stage.MODEL_LOADING.value] = yield from self._traced_stage(
                    ctx, Stage.MODEL_LOADING, self._stage_model_load(ctx, servable)
                )
                stages[Stage.MODEL_DECRYPT.value] = yield from self._traced_stage(
                    ctx, Stage.MODEL_DECRYPT, self._stage_model_decrypt(ctx, servable)
                )
                self.state.loaded_model = request.model_id
                self._idle_runtimes.clear()
        finally:
            self._switch_lock.release(claim)
        # Per-thread runtime: grab an idle one or build it.
        have_runtime = (
            self.reuse_runtime and self._idle_runtimes.get(request.model_id, 0) > 0
        )
        if have_runtime:
            self._idle_runtimes[request.model_id] -= 1
        else:
            stages[Stage.RUNTIME_INIT.value] = yield from self._traced_stage(
                ctx, Stage.RUNTIME_INIT, self._stage_runtime_init(ctx, servable)
            )
        self.state.runtime_for = request.model_id
        stages[Stage.REQUEST_DECRYPT.value] = yield from self._traced_stage(
            ctx,
            Stage.REQUEST_DECRYPT,
            self._stage_fixed(ctx, self.cost.request_decrypt_s),
        )
        stages[Stage.MODEL_INFERENCE.value] = yield from self._traced_stage(
            ctx, Stage.MODEL_INFERENCE, self._stage_exec(ctx, servable)
        )
        stages[Stage.RESULT_ENCRYPT.value] = yield from self._traced_stage(
            ctx,
            Stage.RESULT_ENCRYPT,
            self._stage_fixed(ctx, self.cost.result_encrypt_s),
        )
        if self.reuse_runtime:
            self._idle_runtimes[request.model_id] = (
                self._idle_runtimes.get(request.model_id, 0) + 1
            )
        self.state.note_served(request.model_id, request.user_id)
        response = {"model": request.model_id, "encrypted": True}
        return response, plan.kind.value, stages

    def shutdown(self, ctx: ContainerContext) -> None:
        """Release the enclave's EPC pages when the container is reclaimed."""
        ctx.node.sgx.epc.free(self.actor_id)


class IsoReuseSimActor(_SgxActorBase):
    """The S-FaaS/Clemmys design: enclave + keys reused, model is not."""

    def __init__(
        self, models: Dict[str, ServableModel], cost: CostModel
    ) -> None:
        super().__init__(models, cost, tcs_count=1)
        self._keys_cached_for: Optional[Tuple[str, str]] = None
        self._enclave_ready = False

    @property
    def memory_bytes(self) -> int:
        return self.enclave_total_bytes()

    def startup(self, ctx: ContainerContext):
        """Sandbox start plus a one-time enclave launch (reused afterwards)."""
        yield from self._traced_stage(
            ctx,
            Stage.ENCLAVE_INIT,
            self._stage_enclave_init(ctx, self.enclave_total_bytes()),
        )
        self._enclave_ready = True

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request, reloading model and runtime from scratch."""
        servable = self._servable(request.model_id)
        stages: Dict[str, float] = {}
        pair = (request.model_id, request.user_id)
        kind = InvocationKind.WARM
        if self._keys_cached_for != pair:
            stages[Stage.KEY_RETRIEVAL.value] = yield from self._traced_stage(
                ctx,
                Stage.KEY_RETRIEVAL,
                self._stage_key_retrieval(
                    ctx, session_reused=self._keys_cached_for is not None
                ),
            )
            self._keys_cached_for = pair
        # No model/runtime reuse: loaded and initialised from scratch.
        stages[Stage.MODEL_LOADING.value] = yield from self._traced_stage(
            ctx, Stage.MODEL_LOADING, self._stage_model_load(ctx, servable)
        )
        stages[Stage.MODEL_DECRYPT.value] = yield from self._traced_stage(
            ctx, Stage.MODEL_DECRYPT, self._stage_model_decrypt(ctx, servable)
        )
        stages[Stage.RUNTIME_INIT.value] = yield from self._traced_stage(
            ctx, Stage.RUNTIME_INIT, self._stage_runtime_init(ctx, servable)
        )
        stages[Stage.REQUEST_DECRYPT.value] = yield from self._traced_stage(
            ctx,
            Stage.REQUEST_DECRYPT,
            self._stage_fixed(ctx, self.cost.request_decrypt_s),
        )
        stages[Stage.MODEL_INFERENCE.value] = yield from self._traced_stage(
            ctx, Stage.MODEL_INFERENCE, self._stage_exec(ctx, servable)
        )
        stages[Stage.RESULT_ENCRYPT.value] = yield from self._traced_stage(
            ctx,
            Stage.RESULT_ENCRYPT,
            self._stage_fixed(ctx, self.cost.result_encrypt_s),
        )
        return {"model": request.model_id}, kind.value, stages

    def shutdown(self, ctx: ContainerContext) -> None:
        """Release the enclave's EPC pages when the container is reclaimed."""
        ctx.node.sgx.epc.free(self.actor_id)


class NativeSimActor(_SgxActorBase):
    """Existing serverless runtimes: a fresh enclave for every invocation."""

    def __init__(self, models: Dict[str, ServableModel], cost: CostModel) -> None:
        super().__init__(models, cost, tcs_count=1)
        self._request_counter = itertools.count(1)

    def startup(self, ctx: ContainerContext):
        """Sandbox start only; Native launches a fresh enclave per request."""
        return
        yield  # pragma: no cover - makes this a generator

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request through the full cold path, enclave included."""
        servable = self._servable(request.model_id)
        stages: Dict[str, float] = {}
        nbytes = servable.enclave_bytes
        epc_key = f"{self.actor_id}.r{next(self._request_counter)}"
        node = ctx.node
        stages[Stage.ENCLAVE_INIT.value] = yield from self._traced_stage(
            ctx, Stage.ENCLAVE_INIT, self._stage_enclave_init(ctx, nbytes, epc_key=epc_key)
        )
        try:
            stages[Stage.KEY_RETRIEVAL.value] = yield from self._traced_stage(
                ctx, Stage.KEY_RETRIEVAL, self._stage_key_retrieval(ctx)
            )
            stages[Stage.MODEL_LOADING.value] = yield from self._traced_stage(
                ctx, Stage.MODEL_LOADING, self._stage_model_load(ctx, servable)
            )
            stages[Stage.MODEL_DECRYPT.value] = yield from self._traced_stage(
                ctx, Stage.MODEL_DECRYPT, self._stage_model_decrypt(ctx, servable)
            )
            stages[Stage.RUNTIME_INIT.value] = yield from self._traced_stage(
                ctx, Stage.RUNTIME_INIT, self._stage_runtime_init(ctx, servable)
            )
            stages[Stage.REQUEST_DECRYPT.value] = yield from self._traced_stage(
                ctx,
                Stage.REQUEST_DECRYPT,
                self._stage_fixed(ctx, self.cost.request_decrypt_s),
            )
            stages[Stage.MODEL_INFERENCE.value] = yield from self._traced_stage(
                ctx, Stage.MODEL_INFERENCE, self._stage_exec(ctx, servable)
            )
            stages[Stage.RESULT_ENCRYPT.value] = yield from self._traced_stage(
                ctx,
                Stage.RESULT_ENCRYPT,
                self._stage_fixed(ctx, self.cost.result_encrypt_s),
            )
        finally:
            node.sgx.epc.free(epc_key)
        return {"model": request.model_id}, InvocationKind.COLD.value, stages


class UntrustedSimActor(_SgxActorBase):
    """No TEE at all: the plaintext comparison of Figures 9, 17, 18."""

    def __init__(
        self,
        models: Dict[str, ServableModel],
        cost: CostModel,
        cache_model: bool = True,
    ) -> None:
        super().__init__(models, cost, tcs_count=1)
        self.cache_model = cache_model
        self._loaded: Optional[str] = None

    def startup(self, ctx: ContainerContext):
        """Sandbox start only; there is no enclave in the untrusted path."""
        return
        yield  # pragma: no cover - makes this a generator

    def _untrusted_load(self, ctx: ContainerContext, servable: ServableModel):
        duration = self.cost.untrusted_model_load_s(servable.profile.model_bytes)
        yield ctx.sim.timeout(duration)
        return duration

    def _untrusted_exec(self, ctx: ContainerContext, servable: ServableModel):
        claim = ctx.node.cores.request()
        yield claim
        try:
            duration = self.cost.untrusted_exec_s(servable.profile, servable.framework)
            yield ctx.sim.timeout(duration)
        finally:
            ctx.node.cores.release(claim)
        return duration

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request without any TEE protection (the plain baseline)."""
        servable = self._servable(request.model_id)
        stages: Dict[str, float] = {}
        was_cached = self.cache_model and self._loaded == request.model_id
        if not was_cached:
            stages[Stage.MODEL_LOADING.value] = yield from self._traced_stage(
                ctx, Stage.MODEL_LOADING, self._untrusted_load(ctx, servable)
            )
            stages[Stage.RUNTIME_INIT.value] = yield from self._traced_stage(
                ctx,
                Stage.RUNTIME_INIT,
                self._stage_fixed(
                    ctx,
                    self.cost.untrusted_runtime_init_s(
                        servable.profile, servable.framework
                    ),
                ),
            )
            self._loaded = request.model_id
        stages[Stage.MODEL_INFERENCE.value] = yield from self._traced_stage(
            ctx, Stage.MODEL_INFERENCE, self._untrusted_exec(ctx, servable)
        )
        kind = InvocationKind.HOT if was_cached else InvocationKind.WARM
        return {"model": request.model_id}, kind.value, stages


# ---------------------------------------------------------------------------
# factory helpers
# ---------------------------------------------------------------------------


def servable_map(
    entries: Iterable[Tuple[str, ModelProfile, str]]
) -> Dict[str, ServableModel]:
    """Build the servable-model map from ``(model_id, profile, framework)``."""
    return {
        model_id: ServableModel(profile=profile, framework=framework)
        for model_id, profile, framework in entries
    }


def semirt_factory(
    models: Dict[str, ServableModel],
    cost: CostModel,
    tcs_count: int = 1,
    key_cache: bool = True,
    reuse_runtime: bool = True,
) -> Callable[[], SemirtSimActor]:
    """Runtime factory producing SeSeMI containers."""
    return lambda: SemirtSimActor(models, cost, tcs_count, key_cache, reuse_runtime)


def iso_reuse_factory(
    models: Dict[str, ServableModel], cost: CostModel
) -> Callable[[], IsoReuseSimActor]:
    """Runtime factory producing Iso-reuse baseline containers."""
    return lambda: IsoReuseSimActor(models, cost)


def native_factory(
    models: Dict[str, ServableModel], cost: CostModel
) -> Callable[[], NativeSimActor]:
    """Runtime factory producing Native baseline containers."""
    return lambda: NativeSimActor(models, cost)


def untrusted_factory(
    models: Dict[str, ServableModel], cost: CostModel, cache_model: bool = True
) -> Callable[[], UntrustedSimActor]:
    """Runtime factory producing untrusted (no-TEE) containers."""
    return lambda: UntrustedSimActor(models, cost, cache_model)
