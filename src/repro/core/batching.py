"""Adaptive request batching (extension; future work in the paper's line).

The serverless-inference systems the paper compares against (MArk,
BATCH) amortise per-request framework overhead by executing several
requests as one batched inference.  SeSeMI can do the same *within its
security rules*: requests are only batched when they take the hot path
for the same ``<uid, M_oid>`` pair, so a batch never mixes users or
models inside the enclave.

:class:`BatchingSemirtActor` extends the SeMIRT simulation actor with a
small accumulation window: the first hot request of a batch becomes the
*leader*, waits ``batch_window_s`` for followers, and executes the whole
batch on one core with sub-linear cost
``exec * (alpha + (1 - alpha) * n)``; followers ride along.  Cold and
warm requests fall back to the normal path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.costs import CostModel
from repro.core.simbridge import SemirtSimActor, ServableModel
from repro.core.stages import InvocationKind, Stage, plan_invocation
from repro.errors import ConfigError
from repro.serverless.action import Request
from repro.serverless.container import ContainerContext


@dataclass
class _Batch:
    """One in-flight batch: the leader plus any followers that joined."""

    model_id: str
    user_id: str
    size: int = 1
    closed: bool = False
    done_event: Optional[object] = None  # fires with per-request exec seconds


class BatchingSemirtActor(SemirtSimActor):
    """SeMIRT with hot-path request batching.

    Parameters
    ----------
    batch_window_s:
        How long the leader waits for followers before executing.
    max_batch:
        Upper bound on requests per batch (bounded by TCS count too --
        each batched request still occupies its own TCS slot).
    batch_alpha:
        Fixed fraction of the execution cost (the non-amortisable part):
        a batch of *n* costs ``exec * (alpha + (1 - alpha) * n)``.
        ``alpha=0.6`` means ~40% of per-request compute amortises away
        at large batch sizes.
    """

    def __init__(
        self,
        models: Dict[str, ServableModel],
        cost: CostModel,
        tcs_count: int = 8,
        batch_window_s: float = 0.05,
        max_batch: int = 8,
        batch_alpha: float = 0.6,
    ) -> None:
        super().__init__(models, cost, tcs_count=tcs_count)
        if batch_window_s < 0:
            raise ConfigError("batch window must be non-negative")
        if not 0.0 < batch_alpha <= 1.0:
            raise ConfigError("batch_alpha must be in (0, 1]")
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        self.batch_window_s = batch_window_s
        self.max_batch = min(max_batch, tcs_count)
        self.batch_alpha = batch_alpha
        self._open_batch: Optional[_Batch] = None
        self.batches_executed = 0
        self.batched_requests = 0

    def batched_exec_s(self, servable: ServableModel, size: int,
                       epc_slowdown: float = 1.0) -> float:
        """Execution time of one batch of ``size`` requests."""
        single = self.cost.model_exec_s(
            servable.profile, servable.framework, epc_slowdown
        )
        return single * (self.batch_alpha + (1.0 - self.batch_alpha) * size)

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request, riding or leading a hot-path batch when possible."""
        plan = plan_invocation(
            self.state, request.model_id, request.user_id,
            key_cache_enabled=self.key_cache, reuse_runtime=self.reuse_runtime,
        )
        # Only hot-path requests are batchable; anything that must touch
        # keys, the model, or the runtime takes the ordinary path.
        if plan.kind != InvocationKind.HOT:
            result = yield from super().handle(ctx, request)
            return result
        servable = self._servable(request.model_id)
        stages: Dict[str, float] = {}
        stages[Stage.REQUEST_DECRYPT.value] = yield from self._stage_fixed(
            ctx, self.cost.request_decrypt_s
        )
        batch = self._open_batch
        joinable = (
            batch is not None
            and not batch.closed
            and batch.model_id == request.model_id
            and batch.user_id == request.user_id
            and batch.size < self.max_batch
        )
        if joinable:
            batch.size += 1
            self.batched_requests += 1
            per_request = yield batch.done_event
            stages[Stage.MODEL_INFERENCE.value] = per_request
        else:
            batch = _Batch(
                model_id=request.model_id,
                user_id=request.user_id,
                done_event=ctx.sim.event(),
            )
            self._open_batch = batch
            self.batched_requests += 1
            if self.batch_window_s > 0 and self.max_batch > 1:
                yield ctx.sim.timeout(self.batch_window_s)
            batch.closed = True
            if self._open_batch is batch:
                self._open_batch = None
            start = ctx.sim.now
            claim = ctx.node.cores.request()
            yield claim
            try:
                slowdown = ctx.node.sgx.epc.access_slowdown()
                yield ctx.sim.timeout(
                    self.batched_exec_s(servable, batch.size, slowdown)
                )
            finally:
                ctx.node.cores.release(claim)
            self.batches_executed += 1
            elapsed = ctx.sim.now - start
            stages[Stage.MODEL_INFERENCE.value] = elapsed
            batch.done_event.succeed(elapsed)
        stages[Stage.RESULT_ENCRYPT.value] = yield from self._stage_fixed(
            ctx, self.cost.result_encrypt_s
        )
        self.state.note_served(request.model_id, request.user_id)
        return (
            {"model": request.model_id, "batched": True},
            InvocationKind.HOT.value,
            stages,
        )


def batching_semirt_factory(
    models: Dict[str, ServableModel],
    cost: CostModel,
    tcs_count: int = 8,
    batch_window_s: float = 0.05,
    max_batch: int = 8,
    batch_alpha: float = 0.6,
):
    """Factory for deploying :class:`BatchingSemirtActor` containers."""
    return lambda: BatchingSemirtActor(
        models, cost, tcs_count, batch_window_s, max_batch, batch_alpha
    )
