"""Adaptive request batching (extension; future work in the paper's line).

The serverless-inference systems the paper compares against (MArk,
BATCH) amortise per-request framework overhead by executing several
requests as one batched inference.  SeSeMI can do the same *within its
security rules*: requests are only batched when they take the hot path
for the same ``<uid, M_oid>`` pair, so a batch never mixes users or
models inside the enclave.

Both twins consume one :class:`BatchPolicy`:

- :class:`BatchingSemirtActor` (this module) batches inside the
  discrete-event simulation;
- the live TCS-slot scheduler (:class:`~repro.core.semirt.SemirtHost`
  with ``SchedulerConfig(batch=...)``) batches real encrypted requests
  through the ticketed ``EC_MODEL_INF_BATCH`` ECALL.

The cost model is shared too: a batch of *n* hot requests executes with
sub-linear cost ``exec * (alpha + (1 - alpha) * n)`` -- the ``alpha``
fraction is the per-invocation overhead (enclave transition, framework
entry) that one batched call pays once.  See ``docs/batching.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.costs import CostModel
from repro.core.simbridge import SemirtSimActor, ServableModel
from repro.core.stages import InvocationKind, Stage, plan_invocation
from repro.errors import ConfigError
from repro.serverless.action import Request
from repro.serverless.container import ContainerContext
from repro.sim.core import Event


@dataclass(frozen=True)
class BatchPolicy:
    """Hot-path micro-batching knobs, shared by both twins.

    Like :class:`~repro.core.semirt.SchedulerConfig`, this is **host
    policy, not enclave identity**: it is excluded from
    ``settings()``/MRENCLAVE (same rule as ``paced_service_s``), so
    tuning the batch window never changes ``E_S``.  The *security* rule
    -- a batch only ever holds requests for one ``<uid, M_oid>`` pair --
    is enforced inside the enclave regardless of these knobs.

    ``batch_window_s``
        How long the batch leader waits for followers before executing.
    ``max_batch``
        Upper bound on requests per batch.  Every batched request
        occupies one TCS slot (sim) / one execution context (live), so
        the effective bound is :meth:`clamped` to the TCS count.
    ``alpha``
        Fixed fraction of the execution cost (the non-amortisable part):
        a batch of *n* costs ``exec * (alpha + (1 - alpha) * n)``.
        ``alpha=0.6`` means ~40% of per-request compute amortises away
        at large batch sizes.
    """

    batch_window_s: float = 0.05
    max_batch: int = 8
    alpha: float = 0.6

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ConfigError("batch window must be non-negative")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError("batch_alpha must be in (0, 1]")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")

    def clamped(self, tcs_count: int) -> "BatchPolicy":
        """This policy with ``max_batch`` bounded by ``tcs_count``.

        Each batched request holds one TCS slot (simulation) or one
        enclave execution context (live scheduler), both of which the
        build caps at ``tcs_count`` -- a batch larger than that could
        never execute.  The clamp is explicit policy surgery here, not
        a silent shrink inside an actor constructor.
        """
        if tcs_count < 1:
            raise ConfigError("tcs_count must be >= 1")
        if self.max_batch <= tcs_count:
            return self
        return replace(self, max_batch=tcs_count)

    def batch_cost_s(self, single_s: float, size: int) -> float:
        """Execution time of one batch of ``size`` requests."""
        return single_s * (self.alpha + (1.0 - self.alpha) * size)

    def amortised_s(self, single_s: float, size: int) -> float:
        """Seconds saved vs ``size`` unbatched executions of ``single_s``."""
        return single_s * self.alpha * (size - 1)

    def feed_window(self, tcs_count: int) -> int:
        """In-flight requests a submitter needs to keep the accumulator fed.

        A batch leader only finds followers when they are already queued
        behind it, so a pipelining submitter (``UserSession.infer_many``,
        the service tier's window) must keep at least *two* full batches
        outstanding: one executing, one forming.  Derived from the
        policy itself (clamped to ``tcs_count``) so tuning ``max_batch``
        can never silently starve the accumulator.
        """
        return max(tcs_count, 2 * self.clamped(tcs_count).max_batch)


@dataclass
class _Batch:
    """One in-flight batch: the leader plus any followers that joined."""

    model_id: str
    user_id: str
    size: int = 1
    closed: bool = False
    #: fires with per-request exec seconds once the leader has executed
    done_event: Optional[Event] = None


class BatchingSemirtActor(SemirtSimActor):
    """SeMIRT with hot-path request batching (simulation twin).

    The batching knobs arrive as one :class:`BatchPolicy`; the policy's
    ``max_batch`` is :meth:`~BatchPolicy.clamped` to ``tcs_count``
    because each batched request still occupies its own TCS slot.
    """

    def __init__(
        self,
        models: Dict[str, ServableModel],
        cost: CostModel,
        tcs_count: int = 8,
        policy: Optional[BatchPolicy] = None,
    ) -> None:
        super().__init__(models, cost, tcs_count=tcs_count)
        self.policy = (policy or BatchPolicy()).clamped(tcs_count)
        assert self.policy.max_batch <= tcs_count
        self._open_batch: Optional[_Batch] = None
        self.batches_executed = 0
        self.batched_requests = 0

    # flat read-only views over the policy
    @property
    def batch_window_s(self) -> float:
        return self.policy.batch_window_s

    @property
    def max_batch(self) -> int:
        return self.policy.max_batch

    @property
    def batch_alpha(self) -> float:
        return self.policy.alpha

    def batched_exec_s(self, servable: ServableModel, size: int,
                       epc_slowdown: float = 1.0) -> float:
        """Execution time of one batch of ``size`` requests."""
        single = self.cost.model_exec_s(
            servable.profile, servable.framework, epc_slowdown
        )
        return self.policy.batch_cost_s(single, size)

    def handle(self, ctx: ContainerContext, request: Request):
        """Serve one request, riding or leading a hot-path batch when possible."""
        plan = plan_invocation(
            self.state, request.model_id, request.user_id,
            key_cache_enabled=self.key_cache, reuse_runtime=self.reuse_runtime,
        )
        # Only hot-path requests are batchable; anything that must touch
        # keys, the model, or the runtime takes the ordinary path.
        if plan.kind != InvocationKind.HOT:
            result = yield from super().handle(ctx, request)
            return result
        servable = self._servable(request.model_id)
        stages: Dict[str, float] = {}
        stages[Stage.REQUEST_DECRYPT.value] = yield from self._stage_fixed(
            ctx, self.cost.request_decrypt_s
        )
        batch = self._open_batch
        joinable = (
            batch is not None
            and not batch.closed
            and batch.model_id == request.model_id
            and batch.user_id == request.user_id
            and batch.size < self.max_batch
        )
        if joinable:
            batch.size += 1
            self.batched_requests += 1
            per_request = yield batch.done_event
            stages[Stage.MODEL_INFERENCE.value] = per_request
        else:
            batch = _Batch(
                model_id=request.model_id,
                user_id=request.user_id,
                done_event=ctx.sim.event(),
            )
            self._open_batch = batch
            self.batched_requests += 1
            if self.batch_window_s > 0 and self.max_batch > 1:
                yield ctx.sim.timeout(self.batch_window_s)
            batch.closed = True
            if self._open_batch is batch:
                self._open_batch = None
            start = ctx.sim.now
            claim = ctx.node.cores.request()
            yield claim
            try:
                slowdown = ctx.node.sgx.epc.access_slowdown()
                yield ctx.sim.timeout(
                    self.batched_exec_s(servable, batch.size, slowdown)
                )
            finally:
                ctx.node.cores.release(claim)
            self.batches_executed += 1
            elapsed = ctx.sim.now - start
            stages[Stage.MODEL_INFERENCE.value] = elapsed
            batch.done_event.succeed(elapsed)
        stages[Stage.RESULT_ENCRYPT.value] = yield from self._stage_fixed(
            ctx, self.cost.result_encrypt_s
        )
        self.state.note_served(request.model_id, request.user_id)
        return (
            {"model": request.model_id, "batched": True},
            InvocationKind.HOT.value,
            stages,
        )


def batching_semirt_factory(
    models: Dict[str, ServableModel],
    cost: CostModel,
    tcs_count: int = 8,
    policy: Optional[BatchPolicy] = None,
):
    """Factory for deploying :class:`BatchingSemirtActor` containers."""
    resolved = policy or BatchPolicy()
    return lambda: BatchingSemirtActor(models, cost, tcs_count, resolved)
