"""Sharded KeyService deployment (the Section IV-D scaling note).

"For added protection and performance, multiple KeyService can be
deployed to isolate keys from different users, which require users to
specify the address of the corresponding KeyService in their requests."

A :class:`KeyServiceFleet` runs N independent KeyService enclaves (all
built from the same code, hence sharing the identity ``E_K`` that
clients derive) and assigns principals to shards by identity hash.
Isolation is real: a shard only holds the keys of the principals mapped
to it, so compromising the access lists of one shard says nothing about
the others.

For availability the fleet additionally supports *replicated homes*:
:meth:`KeyServiceFleet.homes_for` maps a principal to its primary shard
plus the next shard as replica.  Replication is necessarily client-side
-- RA-TLS traffic terminates inside the enclave, so an untrusted proxy
cannot mirror writes -- clients simply perform registration and key
release against every home.  :class:`FailoverEndpoint` then gives
SeMIRT instances a single KeyService address that routes to the first
healthy home, so a shard crash surfaces only as one failed call followed
by re-attestation against the replica.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.keyservice import KEYSERVICE_CONFIG, KeyServiceHost
from repro.errors import ConfigError, TransportError
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuildConfig
from repro.sgx.platform import SGX2, HardwareProfile, SgxPlatform


class KeyServiceFleet:
    """N KeyService shards with hash-based principal placement."""

    def __init__(
        self,
        num_shards: int,
        attestation: AttestationService,
        hardware: HardwareProfile = SGX2,
        config: EnclaveBuildConfig = KEYSERVICE_CONFIG,
    ) -> None:
        if num_shards < 1:
            raise ConfigError("a fleet needs at least one shard")
        self.attestation = attestation
        self.shards: List[KeyServiceHost] = []
        for index in range(num_shards):
            platform = SgxPlatform(
                hardware,
                attestation_service=attestation,
                platform_id=f"keyservice-shard-{index}",
            )
            self.shards.append(KeyServiceHost(platform, attestation, config))
        self._checkpoints: Dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def measurement(self):
        """The common enclave identity ``E_K`` (same code on every shard)."""
        return self.shards[0].measurement

    def shard_index_for(self, principal_id: str) -> int:
        """Deterministic shard placement by identity hash."""
        return int(principal_id[:8], 16) % len(self.shards)

    def shard_for(self, principal_id: str) -> KeyServiceHost:
        """The KeyService host a principal must register and fetch from."""
        return self.shards[self.shard_index_for(principal_id)]

    def homes_for(self, principal_id: str) -> List[int]:
        """The shard indices holding this principal's records.

        Primary (hash placement) first, then the next shard as replica.
        With a single-shard fleet there is nowhere to replicate to, so
        the list degenerates to the primary alone.
        """
        primary = self.shard_index_for(principal_id)
        if len(self.shards) == 1:
            return [primary]
        return [primary, (primary + 1) % len(self.shards)]

    def healthy_home_for(self, principal_id: str) -> KeyServiceHost:
        """The first live home shard; raises when every home is down."""
        for index in self.homes_for(principal_id):
            if self.shards[index].alive:
                return self.shards[index]
        raise TransportError(
            f"all home shards of {principal_id[:12]}... are down"
        )

    def identical_identities(self) -> bool:
        """True when every shard attests to the same ``E_K``."""
        return len({shard.measurement for shard in self.shards}) == 1

    # -- availability (chaos) lifecycle -----------------------------------------

    def checkpoint(self, index: int) -> bytes:
        """Take and remember a sealed checkpoint of one shard."""
        sealed = self.shards[index].snapshot()
        self._checkpoints[index] = sealed
        return sealed

    def kill_shard(self, index: int) -> None:
        """Crash-stop one shard, checkpointing it first if still alive.

        The checkpoint models the shard's periodic sealed-state persistence:
        a real deployment writes sealed snapshots to disk ahead of time, it
        does not get to seal at the moment of the crash.
        """
        shard = self.shards[index]
        if shard.alive and index not in self._checkpoints:
            self._checkpoints[index] = shard.snapshot()
        shard.stop()

    def restart_shard(self, index: int) -> None:
        """Relaunch one shard, recovering the last sealed checkpoint."""
        self.shards[index].restart(self._checkpoints.get(index))


class FailoverEndpoint:
    """One KeyService address that routes around dead home shards.

    Presents the :class:`KeyServiceHost` surface (``measurement``,
    ``handshake``, ``request``) for a fixed principal, but dispatches
    each *handshake* to the first healthy home shard.  Because every
    shard numbers its channels independently (they would collide), the
    endpoint keeps its own channel-id namespace and maps each issued id
    to ``(shard, shard_channel_id)``.

    Failover is attestation-shaped: when the shard owning a channel
    dies, :meth:`request` raises :class:`~repro.errors.TransportError`;
    the caller's one-shot re-attestation path (e.g.
    ``SemirtEnclaveCode._fetch_keys``) then re-handshakes, and the new
    handshake lands on the replica.  No channel state migrates -- it
    cannot, since RA-TLS sessions live inside the dead enclave.
    """

    def __init__(self, fleet: KeyServiceFleet, principal_id: str, tracer=None) -> None:
        self.fleet = fleet
        self.principal_id = principal_id
        self.tracer = tracer
        self.failovers = 0
        self._next_channel_id = 1
        self._routes: Dict[int, Tuple[KeyServiceHost, int]] = {}
        self._last_shard: Optional[KeyServiceHost] = None

    @property
    def measurement(self):
        """The fleet-wide ``E_K`` (identical on every shard)."""
        return self.fleet.measurement

    def handshake(self, offer_wire: dict) -> dict:
        """Open an RA-TLS channel on the first healthy home shard."""
        shard = self.fleet.healthy_home_for(self.principal_id)
        if self._last_shard is not None and shard is not self._last_shard:
            self.failovers += 1
            if self.tracer is not None:
                span = self.tracer.current_span()
                if span is not None:
                    span.add_event(
                        "keyservice_failover",
                        to=shard.platform.platform_id,
                    )
        self._last_shard = shard
        reply = shard.handshake(offer_wire)
        channel_id = self._next_channel_id
        self._next_channel_id += 1
        self._routes[channel_id] = (shard, reply["channel_id"])
        routed = dict(reply)
        routed["channel_id"] = channel_id
        return routed

    def request(self, channel_id: int, ciphertext: bytes) -> bytes:
        """Relay one encrypted operation to the shard owning the channel."""
        route = self._routes.get(channel_id)
        if route is None:
            raise TransportError(f"unknown endpoint channel {channel_id}")
        shard, shard_channel_id = route
        return shard.request(shard_channel_id, ciphertext)
