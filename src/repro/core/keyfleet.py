"""Sharded KeyService deployment (the Section IV-D scaling note).

"For added protection and performance, multiple KeyService can be
deployed to isolate keys from different users, which require users to
specify the address of the corresponding KeyService in their requests."

A :class:`KeyServiceFleet` runs N independent KeyService enclaves (all
built from the same code, hence sharing the identity ``E_K`` that
clients derive) and assigns principals to shards by identity hash.
Isolation is real: a shard only holds the keys of the principals mapped
to it, so compromising the access lists of one shard says nothing about
the others.
"""

from __future__ import annotations

from typing import List

from repro.core.keyservice import KEYSERVICE_CONFIG, KeyServiceHost
from repro.errors import ConfigError
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveBuildConfig
from repro.sgx.platform import SGX2, HardwareProfile, SgxPlatform


class KeyServiceFleet:
    """N KeyService shards with hash-based principal placement."""

    def __init__(
        self,
        num_shards: int,
        attestation: AttestationService,
        hardware: HardwareProfile = SGX2,
        config: EnclaveBuildConfig = KEYSERVICE_CONFIG,
    ) -> None:
        if num_shards < 1:
            raise ConfigError("a fleet needs at least one shard")
        self.attestation = attestation
        self.shards: List[KeyServiceHost] = []
        for index in range(num_shards):
            platform = SgxPlatform(
                hardware,
                attestation_service=attestation,
                platform_id=f"keyservice-shard-{index}",
            )
            self.shards.append(KeyServiceHost(platform, attestation, config))

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def measurement(self):
        """The common enclave identity ``E_K`` (same code on every shard)."""
        return self.shards[0].measurement

    def shard_index_for(self, principal_id: str) -> int:
        """Deterministic shard placement by identity hash."""
        return int(principal_id[:8], 16) % len(self.shards)

    def shard_for(self, principal_id: str) -> KeyServiceHost:
        """The KeyService host a principal must register and fetch from."""
        return self.shards[self.shard_index_for(principal_id)]

    def identical_identities(self) -> bool:
        """True when every shard attests to the same ``E_K``."""
        return len({shard.measurement for shard in self.shards}) == 1
