"""repro: a full reproduction of SeSeMI (ICDE 2025) in Python.

SeSeMI is a secure serverless model-inference system built on Intel SGX
and Apache OpenWhisk.  This package reimplements the system and every
substrate it depends on -- see DESIGN.md for the inventory and the
paper-to-module substitution table.

Quick tour:

- :mod:`repro.core` -- the paper's contribution: KeyService (Algorithm 1),
  SeMIRT (Algorithm 2), FnPacker, owner/user clients, and simulation twins.
- :mod:`repro.sgx` -- functional Intel SGX: enclaves, MRENCLAVE,
  attestation, RA-TLS, EPC accounting.
- :mod:`repro.crypto` -- AES-GCM, DH, Schnorr signatures from scratch.
- :mod:`repro.mlrt` -- TVM- and TFLM-style inference runtimes + model zoo.
- :mod:`repro.serverless` -- an OpenWhisk-like platform on virtual time.
- :mod:`repro.sim` -- the discrete-event simulation core.
- :mod:`repro.workloads` -- arrival processes, drivers, metrics.
- :mod:`repro.obs` -- distributed tracing: spans, critical-path
  analysis, Chrome-trace export, in wall time or virtual time.
"""

from repro.core.deployment import ModelHandle, SeSeMIEnvironment, UserSession

__version__ = "1.0.0"

__all__ = ["ModelHandle", "SeSeMIEnvironment", "UserSession", "__version__"]
