"""Setup shim so editable installs work offline (no `wheel` available)."""

from setuptools import setup

setup()
