#!/usr/bin/env python
"""Merge per-job benchmark JSON artifacts into one trajectory file.

CI jobs each upload one benchmark result (``BENCH_service.json``,
``BENCH_warmpool.json``, ``concurrency-bench.json``, ...).  The
``bench-trajectory`` job downloads them all and runs::

    python scripts/merge_bench.py --root artifacts --out BENCH_trajectory.json

producing a single consolidated document: one entry per benchmark,
keyed by the artifact's stem, plus the list of source files.  The
output is deterministic for a given input set (sorted keys, no
timestamps), so trajectory files from two runs of the same commit can
be diffed directly -- the same property the scenario run store has.

Stdlib-only, importable (``merge_paths``) so the test suite can cover
it without spawning a process.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List

#: files that are benchmark results rather than auxiliary JSON
_SKIP_STEMS = {"trace", "manifest"}


def find_bench_files(root: Path) -> List[Path]:
    """Benchmark JSON files under ``root``, depth-first, sorted by name.

    Chrome traces and scenario manifests ride along in the same
    artifact downloads; they are indexes of other gates, not benchmark
    results, so they are skipped by stem.
    """
    out = []
    for path in sorted(root.rglob("*.json"), key=lambda p: (p.name, str(p))):
        stem = path.stem.lower()
        if any(skip in stem for skip in _SKIP_STEMS):
            continue
        out.append(path)
    return out


def _key(path: Path) -> str:
    """A stable benchmark key from a file name.

    ``BENCH_service.json`` -> ``service``; ``gateway-bench.json`` ->
    ``gateway`` -- the naming both generations of CI jobs use.
    """
    stem = path.stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    if stem.endswith("-bench"):
        stem = stem[: -len("-bench")]
    return stem


def merge_paths(paths: Iterable[Path], root: Path) -> dict:
    """The consolidated trajectory document for ``paths``."""
    benchmarks: Dict[str, object] = {}
    sources: Dict[str, str] = {}
    for path in paths:
        key = _key(path)
        if key in benchmarks:
            raise SystemExit(
                f"duplicate benchmark key {key!r}: "
                f"{sources[key]} and {path}"
            )
        try:
            benchmarks[key] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}: not valid JSON ({exc})")
        try:
            sources[key] = str(path.relative_to(root))
        except ValueError:
            sources[key] = str(path)
    return {
        "trajectory_version": 1,
        "benchmarks": benchmarks,
        "sources": sources,
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="merge per-job benchmark JSON into one trajectory file"
    )
    parser.add_argument(
        "--root", default="artifacts",
        help="directory the CI artifacts were downloaded into",
    )
    parser.add_argument(
        "--out", default="BENCH_trajectory.json",
        help="consolidated output path",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"no artifact directory at {root}", file=sys.stderr)
        return 2
    paths = find_bench_files(root)
    if not paths:
        print(f"no benchmark JSON under {root}", file=sys.stderr)
        return 2
    merged = merge_paths(paths, root)
    Path(args.out).write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"merged {len(paths)} benchmark file(s) into {args.out}: "
        + ", ".join(sorted(merged["benchmarks"]))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
