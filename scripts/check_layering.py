#!/usr/bin/env python
"""Enforce the twin-agnostic packages' layering rules.

Two packages are kept importable by both twins -- the simulated
cluster (``repro.serverless``) and the functional runtime
(``repro.core``) -- and so may depend on nothing of theirs:

- ``repro.routing``: the routing plane.  Stdlib + ``repro.errors``
  only; never ``repro.core``, ``repro.serverless``, or ``repro.faults``
  (the latter reaches ``repro.core.wire`` transitively).
- ``repro.warmpool``: warm-pool management.  Stdlib +
  ``repro.errors`` + ``repro.routing`` types (it treats
  ``ScaleOutPolicy`` as one fleet-shape strategy among several).
- ``repro.scenarios``: the scenario registry.  The package ceiling
  admits both twins (its runner executes specs against them) but
  never the CLI or the service tier; on top of that the *read side*
  is pinned per module below, so stored manifests stay listable and
  diffable with nothing but the stdlib on the import path.

Single-file modules pinned the same way:

- ``repro.core.wire``: the versioned wire codecs.  Stdlib +
  ``repro.errors`` only -- every enclave boundary and the HTTP tier
  frame through it, so it must never grow a dependency on the
  runtime, the crypto stack, or numpy.
- ``repro.scenarios.spec`` / ``.store`` / ``.compare`` / ``.table`` /
  ``.registry``: the scenario read side.  Stdlib + ``repro.errors`` +
  each other -- everything that *executes* a spec belongs in
  ``repro.scenarios.runner``, the one module of the package allowed
  to (lazily) import the twins.

Run from the repository root::

    python scripts/check_layering.py

Exits non-zero listing every violating import.  CI runs this next to
the test suite; see ``docs/routing.md`` and ``docs/warmpool.md``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: package name -> the only first-party prefixes it may import
#: (the AST walk below sees *lazy* function-level imports too, so the
#: scenarios ceiling must cover everything its runner defers)
PACKAGES = {
    "routing": ("repro.errors",),
    "warmpool": ("repro.errors", "repro.routing"),
    "scenarios": (
        "repro.errors",
        "repro.core",
        "repro.experiments",
        "repro.faults",
        "repro.mlrt",
        "repro.routing",
        "repro.serverless",
        "repro.sgx",
        "repro.workloads",
    ),
}

#: single-file module (dotted, relative to repro) -> allowed prefixes
MODULES = {
    "core.wire": ("repro.errors",),
    # the scenario read side: loadable without numpy or either twin
    "scenarios.spec": ("repro.errors",),
    "scenarios.table": (),
    "scenarios.store": ("repro.errors", "repro.scenarios.spec"),
    "scenarios.compare": ("repro.scenarios.store", "repro.scenarios.table"),
    "scenarios.registry": ("repro.errors", "repro.scenarios.spec"),
}

ROUTING_DIR = SRC_REPRO / "routing"

#: the only first-party prefixes repro.routing may import
#: (kept as a module-level name for callers of ``check()``)
ALLOWED_REPRO = PACKAGES["routing"]


def _imported_modules(tree: ast.AST):
    """Yield ``(lineno, dotted_module)`` for every absolute import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                continue  # relative: stays inside the package
            if node.module:
                yield node.lineno, node.module


def _allowed(module: str, package: str, allowed) -> bool:
    if not (module == "repro" or module.startswith("repro.")):
        return True  # stdlib (the tree has no third-party deps)
    if module == f"repro.{package}" or module.startswith(f"repro.{package}."):
        return True  # absolute self-imports
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in allowed
    )


def check(routing_dir: Path = ROUTING_DIR, allowed=ALLOWED_REPRO):
    """All layering violations under ``routing_dir`` as printable strings."""
    package = routing_dir.name
    violations = []
    for path in sorted(routing_dir.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, module in _imported_modules(tree):
            if not _allowed(module, package, allowed):
                try:
                    shown = path.relative_to(routing_dir.parent.parent.parent)
                except ValueError:
                    shown = path
                violations.append(
                    f"{shown}:{lineno}: imports {module!r} "
                    f"(repro.{package} may import only the stdlib and "
                    f"{', '.join(allowed)})"
                )
    return violations


def check_module(path: Path, dotted: str, allowed):
    """All layering violations in one module file as printable strings."""
    full = f"repro.{dotted}"
    violations = []
    tree = ast.parse(path.read_text(), filename=str(path))
    for lineno, module in _imported_modules(tree):
        if not (module == "repro" or module.startswith("repro.")):
            continue  # stdlib
        if module == full or any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in allowed
        ):
            continue
        try:
            shown = path.relative_to(SRC_REPRO.parent.parent)
        except ValueError:
            shown = path
        violations.append(
            f"{shown}:{lineno}: imports {module!r} "
            f"({full} may import only the stdlib and {', '.join(allowed)})"
        )
    return violations


def main() -> int:
    """CLI entry point; returns a process exit code."""
    exit_code = 0
    for package, allowed in PACKAGES.items():
        package_dir = SRC_REPRO / package
        if not package_dir.is_dir():
            print(f"missing package: {package_dir}", file=sys.stderr)
            return 2
        violations = check(package_dir, allowed)
        for violation in violations:
            print(violation, file=sys.stderr)
        if violations:
            print(
                f"repro.{package}: {len(violations)} layering violation(s)",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(f"repro.{package} layering OK")
    for dotted, allowed in MODULES.items():
        module_path = SRC_REPRO / (dotted.replace(".", "/") + ".py")
        if not module_path.is_file():
            print(f"missing module: {module_path}", file=sys.stderr)
            return 2
        violations = check_module(module_path, dotted, allowed)
        for violation in violations:
            print(violation, file=sys.stderr)
        if violations:
            print(
                f"repro.{dotted}: {len(violations)} layering violation(s)",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(f"repro.{dotted} layering OK")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
