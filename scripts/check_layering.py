#!/usr/bin/env python
"""Enforce the routing package's layering rule.

``repro.routing`` is the twin-agnostic routing plane: both the
simulated cluster (``repro.core.packer_service``) and the functional
gateway (``repro.core.gateway``) depend on it, so it may depend on
nothing of theirs.  Every module under ``src/repro/routing/`` may
import only the standard library and ``repro.errors`` -- in particular
never ``repro.core``, ``repro.serverless``, or ``repro.faults`` (the
latter reaches ``repro.core.wire`` transitively).

Run from the repository root::

    python scripts/check_layering.py

Exits non-zero listing every violating import.  CI runs this next to
the test suite; see ``docs/routing.md``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROUTING_DIR = Path(__file__).resolve().parent.parent / "src" / "repro" / "routing"

#: the only first-party prefixes repro.routing may import
ALLOWED_REPRO = ("repro.errors",)


def _imported_modules(tree: ast.AST, module_name: str):
    """Yield ``(lineno, dotted_module)`` for every import in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: stays inside repro.routing
                yield node.lineno, "repro.routing"
            elif node.module:
                yield node.lineno, node.module


def _allowed(module: str) -> bool:
    if not (module == "repro" or module.startswith("repro.")):
        return True  # stdlib (the tree has no third-party deps)
    if module.startswith("repro.routing"):
        return True
    return any(
        module == allowed or module.startswith(allowed + ".")
        for allowed in ALLOWED_REPRO
    )


def check(routing_dir: Path = ROUTING_DIR):
    """All layering violations under ``routing_dir`` as printable strings."""
    violations = []
    for path in sorted(routing_dir.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, module in _imported_modules(tree, path.stem):
            if not _allowed(module):
                violations.append(
                    f"{path.relative_to(routing_dir.parent.parent.parent)}:"
                    f"{lineno}: imports {module!r} "
                    f"(repro.routing may import only the stdlib and "
                    f"{', '.join(ALLOWED_REPRO)})"
                )
    return violations


def main() -> int:
    """CLI entry point; returns a process exit code."""
    if not ROUTING_DIR.is_dir():
        print(f"missing routing package: {ROUTING_DIR}", file=sys.stderr)
        return 2
    violations = check()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("repro.routing layering OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
